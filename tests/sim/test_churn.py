"""Unit and integration tests for dynamic joins."""

from __future__ import annotations

import pytest

import repro
from repro.sim import SynchronousEngine, UnknownNodeError
from repro.sim.churn import JoinPlan, late_join_workload


class TestJoinPlan:
    def test_defaults_empty(self):
        plan = JoinPlan()
        assert not plan.has_joins
        assert plan.last_join == 0
        assert not plan.is_dormant(5, 1)

    def test_dormancy_window(self):
        plan = JoinPlan(join_rounds={7: 5})
        assert plan.is_dormant(7, 1)
        assert plan.is_dormant(7, 4)
        assert not plan.is_dormant(7, 5)
        assert not plan.is_dormant(3, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            JoinPlan(join_rounds={1: 0})


class TestLateJoinWorkload:
    def test_shape(self):
        graph, plan = late_join_workload(32, 8, seed=1, k=3)
        assert graph.n == 40
        assert len(plan.join_rounds) == 8
        assert graph.is_weakly_connected()

    def test_join_schedule_is_staggered(self):
        _, plan = late_join_workload(16, 4, seed=1, join_start=5, join_stride=3)
        assert sorted(plan.join_rounds.values()) == [5, 8, 11, 14]

    def test_join_window_spreads_evenly(self):
        _, plan = late_join_workload(16, 8, seed=1, join_start=5, join_window=16)
        rounds = sorted(plan.join_rounds.values())
        assert rounds[0] == 5
        # The window is closed: the last joiner lands exactly on its end.
        assert rounds[-1] == 5 + 16

    def test_join_window_covers_the_documented_endpoint(self):
        # Regression for the off-by-one divisor max(1, joiners): the last
        # joiner must reach join_start + join_window, for any joiner count
        # that fits distinct slots in the window.
        for joiners in (2, 3, 5, 8, 17):
            _, plan = late_join_workload(
                8, joiners, seed=3, join_start=4, join_window=joiners + 3
            )
            rounds = sorted(plan.join_rounds.values())
            assert rounds[0] == 4
            assert rounds[-1] == 4 + joiners + 3
            assert all(4 <= r <= 4 + joiners + 3 for r in rounds)

    def test_join_window_single_joiner_lands_on_start(self):
        _, plan = late_join_workload(8, 1, seed=1, join_start=6, join_window=10)
        assert list(plan.join_rounds.values()) == [6]

    def test_join_window_denser_than_stride_for_many_joiners(self):
        _, windowed = late_join_workload(16, 100, seed=1, join_window=20)
        _, strided = late_join_workload(16, 100, seed=1, join_stride=2)
        assert windowed.last_join < strided.last_join

    def test_join_window_validation(self):
        import pytest

        with pytest.raises(ValueError):
            late_join_workload(4, 1, join_window=-1)

    def test_joiner_contacts_precede_it(self):
        graph, plan = late_join_workload(16, 6, seed=2, k=2, join_start=3)
        for joiner, join_round in plan.join_rounds.items():
            for contact in graph.out(joiner):
                contact_join = plan.join_rounds.get(contact, 0)
                assert contact_join < join_round

    def test_deterministic(self):
        a = late_join_workload(24, 5, seed=9)
        b = late_join_workload(24, 5, seed=9)
        assert a[0] == b[0]
        assert a[1].join_rounds == b[1].join_rounds

    def test_validation(self):
        with pytest.raises(ValueError):
            late_join_workload(0, 1)
        with pytest.raises(ValueError):
            late_join_workload(4, -1)
        with pytest.raises(ValueError):
            late_join_workload(4, 1, contacts=0)


class TestEngineIntegration:
    def test_unknown_join_node_rejected(self):
        from repro.algorithms.flooding import FloodingNode

        with pytest.raises(UnknownNodeError):
            SynchronousEngine(
                {0: {1}, 1: set()},
                FloodingNode,
                join_plan=JoinPlan(join_rounds={99: 3}),
            )

    def test_dormant_node_sends_nothing_before_join(self):
        graph, plan = late_join_workload(8, 1, seed=1, k=2, join_start=9)
        joiner = 8
        from repro.sim import TraceObserver

        observer = TraceObserver(nodes=(joiner,))
        result = repro.discover(
            graph,
            algorithm="sublog",
            seed=1,
            join_plan=plan,
            observers=[observer],
        )
        assert result.completed
        assert all(
            event.round_no >= 9
            for event in observer.events
            if event.sender == joiner
        )

    def test_completion_waits_for_the_last_join(self):
        graph, plan = late_join_workload(32, 4, seed=4, k=3, join_start=15)
        result = repro.discover(graph, algorithm="sublog", seed=4, join_plan=plan)
        assert result.completed
        assert result.rounds >= plan.last_join

    @pytest.mark.parametrize("algorithm", ("sublog", "namedropper", "flooding"))
    def test_algorithms_absorb_joiners(self, algorithm: str):
        graph, plan = late_join_workload(40, 8, seed=6, k=3)
        result = repro.discover(graph, algorithm=algorithm, seed=6, join_plan=plan)
        assert result.completed

    def test_churn_with_loss(self):
        from repro.sim import FaultPlan

        graph, plan = late_join_workload(32, 6, seed=7, k=3)
        result = repro.discover(
            graph,
            algorithm="sublog",
            seed=7,
            join_plan=plan,
            fault_plan=FaultPlan(loss_rate=0.03, seed=7),
            resilient=True,
            watchdog_phases=3,
            stagnation_phases=4,
            max_rounds=1500,
        )
        assert result.completed
