"""Differential tests: the bit-packed vector backend must be
bit-identical to the dense fast path (and by transitivity the legacy
reference path).

The vector backend (``SynchronousEngine(backend="vector")``) lifts the
fast path's candidate-mask learning rule onto a packed numpy matrix with
batched per-round screens.  Breadth (all algorithms x delivery families
x faults) is exercised here and continuously by the oracle fuzzer's
``diff_vector_vs_fast`` leg; this suite also pins the satellite
contracts — digest equality across all three backends, the numpy import
guard, and backend-name validation.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import algorithm_names, get_algorithm
from repro.graphs import make_topology
from repro.sim import BACKENDS, SynchronousEngine, vector_available
from repro.sim.churn import JoinPlan
from repro.sim.errors import ProtocolViolation
from repro.sim.faults import FaultPlan, crash_fraction_plan

needs_numpy = pytest.mark.skipif(
    not vector_available(), reason="numpy unavailable"
)

TOPOLOGY_ARGS = {"kout": {"k": 3}, "gnp": {"p": 0.25}}


def _run_backend(graph, algorithm, backend, *, seed=42, enforce=False,
                 goal="strong", delivery=None, fault_plan=None,
                 join_plan=None):
    spec = get_algorithm(algorithm)
    engine = SynchronousEngine(
        graph,
        spec.node_factory(),
        seed=seed,
        goal=goal,
        delivery=delivery,
        fault_plan=fault_plan,
        join_plan=join_plan,
        enforce_legality=enforce,
        backend=backend,
        algorithm_name=algorithm,
    )
    return engine, engine.run(spec.round_cap(engine.n))


def _assert_identical(pair_a, pair_b):
    (engine_a, result_a), (engine_b, result_b) = pair_a, pair_b
    assert result_a == result_b
    assert engine_a.knowledge_digest() == engine_b.knowledge_digest()
    assert dict(engine_a.knowledge) == dict(engine_b.knowledge)
    assert engine_a.weak_leader() == engine_b.weak_leader()
    assert engine_a.alive_nodes == engine_b.alive_nodes


@needs_numpy
@pytest.mark.parametrize("algorithm", algorithm_names())
@pytest.mark.parametrize(
    "topology,id_space", [("kout", "dense"), ("path", "random")]
)
@pytest.mark.parametrize("enforce", [True, False])
def test_all_algorithms_match_fast(algorithm, topology, id_space, enforce):
    graph = make_topology(
        topology, 20, seed=9, id_space=id_space,
        **TOPOLOGY_ARGS.get(topology, {}),
    )
    fast = _run_backend(graph, algorithm, "fast", enforce=enforce)
    vector = _run_backend(graph, algorithm, "vector", enforce=enforce)
    _assert_identical(fast, vector)


@needs_numpy
@pytest.mark.parametrize(
    "delivery", ["adversarial:2", "perlink:2", "partition:3-6", "jitter:2"]
)
@pytest.mark.parametrize("algorithm", ["sublog", "namedropper", "flooding"])
@pytest.mark.parametrize("enforce", [True, False])
def test_delivery_models_match(delivery, algorithm, enforce):
    graph = make_topology("kout", 20, seed=9, k=3)
    fast = _run_backend(graph, algorithm, "fast", enforce=enforce,
                        delivery=delivery)
    vector = _run_backend(graph, algorithm, "vector", enforce=enforce,
                          delivery=delivery)
    _assert_identical(fast, vector)


@needs_numpy
@pytest.mark.parametrize("algorithm", ["namedropper", "sublog", "flooding"])
def test_faults_and_churn_match(algorithm):
    graph = make_topology("kout", 24, seed=5, k=3)
    loss = FaultPlan(loss_rate=0.15, seed=3)
    crashes = crash_fraction_plan(graph.node_ids, 0.2, 3, seed=7)
    joins = JoinPlan(
        join_rounds={node: 4 for node in sorted(graph.node_ids)[:5]}
    )
    for fault_plan, join_plan, goal in [
        (loss, None, "strong_alive"),
        (crashes, None, "strong_alive"),
        (None, joins, "weak"),
    ]:
        fast = _run_backend(graph, algorithm, "fast", goal=goal,
                            fault_plan=fault_plan, join_plan=join_plan)
        vector = _run_backend(graph, algorithm, "vector", goal=goal,
                              fault_plan=fault_plan, join_plan=join_plan)
        _assert_identical(fast, vector)


@needs_numpy
def test_digest_identical_across_all_three_backends():
    """Satellite contract: ``knowledge_digest()`` — computed from packed
    uint8 rows on the vector backend, from Python-int masks on the fast
    path, and from sorted sets on the legacy path — is byte-identical
    round by round on a seeded run."""
    graph = make_topology("kout", 22, seed=13, k=3)
    spec = get_algorithm("namedropper")
    engines = {
        backend: SynchronousEngine(
            graph, spec.node_factory(), seed=31, enforce_legality=False,
            backend=backend,
        )
        for backend in BACKENDS
    }
    for _ in range(spec.round_cap(22)):
        digests = set()
        for engine in engines.values():
            engine.step()
            digests.add(engine.knowledge_digest())
        assert len(digests) == 1
        if all(e.goal_reached() for e in engines.values()):
            break
    assert all(e.is_strongly_complete() for e in engines.values())


@needs_numpy
def test_knowledge_property_is_lazy_but_current():
    """The vector backend materializes knowledge sets on demand from the
    packed rows — and they must match the reference path when read
    mid-run."""
    graph = make_topology("kout", 16, seed=2, k=3)
    spec = get_algorithm("namedropper")
    vector = SynchronousEngine(
        graph, spec.node_factory(), seed=5, enforce_legality=False,
        backend="vector",
    )
    reference = SynchronousEngine(
        graph, spec.node_factory(), seed=5, enforce_legality=False,
        backend="legacy",
    )
    for _ in range(4):
        vector.step()
        reference.step()
        assert dict(vector.knowledge) == dict(reference.knowledge)


@needs_numpy
def test_protocol_violation_identical_on_vector():
    from repro.sim.messages import Message
    from repro.sim.node import ProtocolNode

    class CheatNode(ProtocolNode):
        def on_round(self, round_no, inbox, rng):
            if round_no == 2:
                peer = min(self.known - {self.node_id})
                self._outbox.append(
                    Message("cheat", self.node_id, peer,
                            ids=frozenset({987654321}))
                )

    graph = {0: {1}, 1: {0}, 2: {0, 1}}
    errors = []
    for backend in ("fast", "vector"):
        engine = SynchronousEngine(
            graph, CheatNode, seed=1, enforce_legality=True, backend=backend
        )
        with pytest.raises(ProtocolViolation) as excinfo:
            for _ in range(4):
                engine.step()
        errors.append(str(excinfo.value))
    assert "carries unknown id 987654321" in errors[0]
    assert errors[0] == errors[1]


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            SynchronousEngine({0: {1}, 1: {0}}, _noop_factory,
                              backend="turbo")

    def test_explicit_backend_wins_over_fast_path(self):
        engine = SynchronousEngine(
            {0: {1}, 1: {0}}, _noop_factory, fast_path=True,
            backend="legacy",
        )
        assert engine.backend == "legacy"
        assert engine.fast_path is False

    def test_fast_path_flag_resolves_backend(self):
        assert SynchronousEngine(
            {0: {1}, 1: {0}}, _noop_factory, fast_path=True
        ).backend == "fast"
        assert SynchronousEngine(
            {0: {1}, 1: {0}}, _noop_factory
        ).backend == "legacy"

    def test_missing_numpy_raises_clear_error(self, monkeypatch):
        import repro.sim.vector_kernel as vk

        monkeypatch.setattr(vk, "np", None)
        assert not vk.vector_available()
        with pytest.raises(ImportError, match="requires numpy"):
            SynchronousEngine(
                {0: {1}, 1: {0}}, _noop_factory, backend="vector"
            )


def _noop_factory(node_id):
    from repro.sim.node import ProtocolNode

    class Quiet(ProtocolNode):
        def on_round(self, round_no, inbox, rng):
            pass

    return Quiet(node_id)
