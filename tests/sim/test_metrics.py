"""Unit tests for complexity accounting."""

from __future__ import annotations

from repro.sim.messages import Message
from repro.sim.metrics import MetricsCollector, RunResult


def _msg(kind: str = "x", ids: tuple = ()) -> Message:
    return Message(kind=kind, sender=1, recipient=2, ids=ids)


class TestMetricsCollector:
    def test_totals_accumulate(self):
        collector = MetricsCollector()
        collector.record_send(_msg(ids=(1, 2)))
        collector.record_send(_msg(ids=(3,)))
        assert collector.total_messages == 2
        assert collector.total_pointers == 3

    def test_dropped_messages_still_charged(self):
        collector = MetricsCollector()
        collector.record_send(_msg(ids=(1,)), dropped=True)
        assert collector.total_messages == 1
        assert collector.total_pointers == 1
        assert collector.total_dropped == 1

    def test_per_kind_breakdown(self):
        collector = MetricsCollector()
        collector.record_send(_msg(kind="a", ids=(1,)))
        collector.record_send(_msg(kind="a"))
        collector.record_send(_msg(kind="b", ids=(1, 2)))
        assert collector.messages_by_kind == {"a": 2, "b": 1}
        assert collector.pointers_by_kind == {"a": 1, "b": 2}

    def test_close_round_resets_round_counters(self):
        collector = MetricsCollector()
        collector.record_send(_msg(ids=(1,)))
        first = collector.close_round(1)
        assert first.messages == 1
        assert first.pointers == 1
        second = collector.close_round(2)
        assert second.messages == 0
        assert collector.total_messages == 1

    def test_round_stats_record_drops(self):
        collector = MetricsCollector()
        collector.record_send(_msg(), dropped=True)
        collector.record_send(_msg())
        stats = collector.close_round(1)
        assert stats.dropped_messages == 1
        assert stats.delivered_messages == 1

    def test_delivered_messages_clamps_under_delayed_delivery(self):
        # Under non-lockstep delivery an in-flight loss is charged to the
        # delivery round while its send was counted rounds earlier, so a
        # quiet round can see more drops than sends.  The per-round view
        # clamps at zero; totals reconcile at the run level.
        from repro.sim.metrics import RoundStats

        assert RoundStats(5, 0, 0, 3).delivered_messages == 0
        assert RoundStats(5, 2, 0, 3).delivered_messages == 0
        assert RoundStats(5, 4, 0, 3).delivered_messages == 1

        collector = MetricsCollector()
        collector.record_send(_msg())  # round 1: one send, delivered later
        first = collector.close_round(1)
        collector.record_in_flight_loss()  # round 2: the loss lands here
        second = collector.close_round(2)
        assert first.delivered_messages == 1
        assert second.delivered_messages == 0  # raw difference would be -1
        assert collector.total_messages - collector.total_dropped == 0

    def test_engine_round_stats_never_negative_under_adversarial_delivery(self):
        from typing import Sequence

        from repro.sim import FaultPlan, ProtocolNode, SynchronousEngine

        class Pusher(ProtocolNode):
            def on_round(self, round_no, inbox: Sequence, rng):
                if round_no <= 2:
                    for peer in sorted(self.known - {self.node_id}):
                        self.send(peer, "ping")

        # Sends stop after round 2, but adversarial:3 holds everything 4
        # rounds; node 1 crashes at round 4, so rounds with zero sends
        # absorb in-flight crash losses.
        engine = SynchronousEngine(
            {0: {1}, 1: {0}, 2: {1}},
            Pusher,
            delivery="adversarial:3",
            fault_plan=FaultPlan(crash_rounds={1: 4}),
        )
        for _ in range(7):
            engine.step()
        stats = engine.metrics.round_stats
        assert any(s.dropped_messages > s.messages for s in stats)
        assert all(s.delivered_messages >= 0 for s in stats)
        delivered_total = engine.metrics.total_messages - engine.metrics.total_dropped
        assert delivered_total >= 0


class TestRunResult:
    def _result(self, **overrides) -> RunResult:
        defaults = dict(
            algorithm="test",
            n=16,
            seed=0,
            completed=True,
            rounds=5,
            messages=100,
            pointers=400,
        )
        defaults.update(overrides)
        return RunResult(**defaults)

    def test_id_bits_is_ceil_log2(self):
        assert self._result(n=16).id_bits == 4
        assert self._result(n=17).id_bits == 5
        assert self._result(n=2).id_bits == 1

    def test_bits_include_headers(self):
        result = self._result(n=16, messages=10, pointers=40)
        assert result.bits == (40 + 4 * 10) * 4

    def test_messages_per_node(self):
        assert self._result(n=16, messages=160).messages_per_node == 10.0

    def test_summary_is_flat(self):
        summary = self._result().summary()
        assert summary["algorithm"] == "test"
        assert summary["rounds"] == 5
        assert "bits" in summary


class TestRecordBatch:
    def test_batch_matches_per_message_recording(self):
        batch = MetricsCollector()
        serial = MetricsCollector()
        sends = [
            _msg(kind="invite", ids=(1, 2, 3)),
            _msg(kind="invite", ids=()),
            _msg(kind="report", ids=(4,)),
        ]
        for message in sends:
            serial.record_send(message)
        batch.record_batch(
            {"invite": 2, "report": 1}, {"invite": 3, "report": 1}
        )
        assert batch.total_messages == serial.total_messages == 3
        assert batch.total_pointers == serial.total_pointers == 4
        assert batch.messages_by_kind == serial.messages_by_kind
        assert batch.pointers_by_kind == serial.pointers_by_kind
        assert batch.close_round(1) == serial.close_round(1)

    def test_batch_charges_drops(self):
        collector = MetricsCollector()
        collector.record_batch({"x": 5}, {"x": 10}, dropped=2)
        stats = collector.close_round(1)
        assert stats.dropped_messages == 2
        assert stats.delivered_messages == 3
        assert collector.total_dropped == 2

    def test_zero_pointer_kind_still_materializes(self):
        collector = MetricsCollector()
        collector.record_batch({"ping": 1}, {"ping": 0})
        assert collector.pointers_by_kind["ping"] == 0
