"""Unit tests for complexity accounting."""

from __future__ import annotations

from repro.sim.messages import Message
from repro.sim.metrics import MetricsCollector, RunResult


def _msg(kind: str = "x", ids: tuple = ()) -> Message:
    return Message(kind=kind, sender=1, recipient=2, ids=ids)


class TestMetricsCollector:
    def test_totals_accumulate(self):
        collector = MetricsCollector()
        collector.record_send(_msg(ids=(1, 2)))
        collector.record_send(_msg(ids=(3,)))
        assert collector.total_messages == 2
        assert collector.total_pointers == 3

    def test_dropped_messages_still_charged(self):
        collector = MetricsCollector()
        collector.record_send(_msg(ids=(1,)), dropped=True)
        assert collector.total_messages == 1
        assert collector.total_pointers == 1
        assert collector.total_dropped == 1

    def test_per_kind_breakdown(self):
        collector = MetricsCollector()
        collector.record_send(_msg(kind="a", ids=(1,)))
        collector.record_send(_msg(kind="a"))
        collector.record_send(_msg(kind="b", ids=(1, 2)))
        assert collector.messages_by_kind == {"a": 2, "b": 1}
        assert collector.pointers_by_kind == {"a": 1, "b": 2}

    def test_close_round_resets_round_counters(self):
        collector = MetricsCollector()
        collector.record_send(_msg(ids=(1,)))
        first = collector.close_round(1)
        assert first.messages == 1
        assert first.pointers == 1
        second = collector.close_round(2)
        assert second.messages == 0
        assert collector.total_messages == 1

    def test_round_stats_record_drops(self):
        collector = MetricsCollector()
        collector.record_send(_msg(), dropped=True)
        collector.record_send(_msg())
        stats = collector.close_round(1)
        assert stats.dropped_messages == 1
        assert stats.delivered_messages == 1


class TestRunResult:
    def _result(self, **overrides) -> RunResult:
        defaults = dict(
            algorithm="test",
            n=16,
            seed=0,
            completed=True,
            rounds=5,
            messages=100,
            pointers=400,
        )
        defaults.update(overrides)
        return RunResult(**defaults)

    def test_id_bits_is_ceil_log2(self):
        assert self._result(n=16).id_bits == 4
        assert self._result(n=17).id_bits == 5
        assert self._result(n=2).id_bits == 1

    def test_bits_include_headers(self):
        result = self._result(n=16, messages=10, pointers=40)
        assert result.bits == (40 + 4 * 10) * 4

    def test_messages_per_node(self):
        assert self._result(n=16, messages=160).messages_per_node == 10.0

    def test_summary_is_flat(self):
        summary = self._result().summary()
        assert summary["algorithm"] == "test"
        assert summary["rounds"] == 5
        assert "bits" in summary


class TestRecordBatch:
    def test_batch_matches_per_message_recording(self):
        batch = MetricsCollector()
        serial = MetricsCollector()
        sends = [
            _msg(kind="invite", ids=(1, 2, 3)),
            _msg(kind="invite", ids=()),
            _msg(kind="report", ids=(4,)),
        ]
        for message in sends:
            serial.record_send(message)
        batch.record_batch(
            {"invite": 2, "report": 1}, {"invite": 3, "report": 1}
        )
        assert batch.total_messages == serial.total_messages == 3
        assert batch.total_pointers == serial.total_pointers == 4
        assert batch.messages_by_kind == serial.messages_by_kind
        assert batch.pointers_by_kind == serial.pointers_by_kind
        assert batch.close_round(1) == serial.close_round(1)

    def test_batch_charges_drops(self):
        collector = MetricsCollector()
        collector.record_batch({"x": 5}, {"x": 10}, dropped=2)
        stats = collector.close_round(1)
        assert stats.dropped_messages == 2
        assert stats.delivered_messages == 3
        assert collector.total_dropped == 2

    def test_zero_pointer_kind_still_materializes(self):
        collector = MetricsCollector()
        collector.record_batch({"ping": 1}, {"ping": 0})
        assert collector.pointers_by_kind["ping"] == 0
