"""Tests for fault-adjacent metric accounting (in-flight losses)."""

from __future__ import annotations

from repro.sim.messages import Message
from repro.sim.metrics import MetricsCollector


class TestInFlightLoss:
    def test_in_flight_loss_moves_drop_counters_only(self):
        collector = MetricsCollector()
        collector.record_send(Message(kind="x", sender=1, recipient=2, ids=(3,)))
        collector.record_in_flight_loss()
        assert collector.total_messages == 1
        assert collector.total_pointers == 1
        assert collector.total_dropped == 1

    def test_round_stats_include_in_flight_losses(self):
        collector = MetricsCollector()
        collector.record_send(Message(kind="x", sender=1, recipient=2))
        collector.record_in_flight_loss()
        stats = collector.close_round(1)
        assert stats.dropped_messages == 1


class TestEngineInFlightLoss:
    def test_message_to_node_crashing_on_delivery_round_is_lost(self):
        from typing import Sequence

        from repro.sim import FaultPlan, ProtocolNode, SynchronousEngine

        class Pusher(ProtocolNode):
            def on_round(self, round_no, inbox: Sequence):
                for peer in sorted(self.known - {self.node_id}):
                    self.send(peer, "ping")

        # Node 1 crashes at round 2 — exactly when round-1 messages are
        # consumed; delivery already happened at the end of round 1, so
        # ground truth learned, but from round 2 on everything to node 1
        # is dropped.
        engine = SynchronousEngine(
            {0: {1}, 1: {0}, 2: {1}},
            Pusher,
            fault_plan=FaultPlan(crash_rounds={1: 2}),
        )
        engine.step()
        engine.step()
        engine.step()
        assert engine.metrics.total_dropped > 0

    def test_jitter_delivery_to_crashed_node_counts_in_flight(self):
        from typing import Sequence

        from repro.sim import FaultPlan, ProtocolNode, SynchronousEngine

        class Pusher(ProtocolNode):
            def on_round(self, round_no, inbox: Sequence):
                if round_no == 1:
                    for peer in sorted(self.known - {self.node_id}):
                        self.send(peer, "ping")

        # With jitter up to 3, some round-1 messages arrive at rounds 3-4;
        # node 1 crashes at round 3, so late arrivals are in-flight losses.
        engine = SynchronousEngine(
            {0: {1}, 1: set(), 2: {1}},
            Pusher,
            seed=5,
            jitter=3,
            fault_plan=FaultPlan(crash_rounds={1: 3}),
        )
        for _ in range(6):
            engine.step()
        # All sends targeted node 1; whatever was not consumed by round 2
        # was dropped in flight.
        assert engine.metrics.total_messages == 2
