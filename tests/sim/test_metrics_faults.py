"""Tests for fault-adjacent metric accounting (in-flight losses)."""

from __future__ import annotations

from repro.sim.messages import Message
from repro.sim.metrics import MetricsCollector


class TestInFlightLoss:
    def test_in_flight_loss_moves_drop_counters_only(self):
        collector = MetricsCollector()
        collector.record_send(Message(kind="x", sender=1, recipient=2, ids=(3,)))
        collector.record_in_flight_loss()
        assert collector.total_messages == 1
        assert collector.total_pointers == 1
        assert collector.total_dropped == 1

    def test_round_stats_include_in_flight_losses(self):
        collector = MetricsCollector()
        collector.record_send(Message(kind="x", sender=1, recipient=2))
        collector.record_in_flight_loss()
        stats = collector.close_round(1)
        assert stats.dropped_messages == 1


class TestDropReasons:
    def test_in_flight_loss_defaults_to_crash(self):
        from repro.sim.metrics import DROP_CRASH

        collector = MetricsCollector()
        collector.record_in_flight_loss()
        assert collector.dropped_by_reason == {DROP_CRASH: 1}

    def test_reasons_accumulate_independently(self):
        from repro.sim.metrics import DROP_CRASH, DROP_DORMANT, DROP_PARTITION

        collector = MetricsCollector()
        collector.record_in_flight_loss(DROP_CRASH)
        collector.record_in_flight_loss(DROP_DORMANT)
        collector.record_in_flight_loss(DROP_DORMANT)
        collector.record_in_flight_loss(DROP_PARTITION)
        assert collector.dropped_by_reason == {
            DROP_CRASH: 1,
            DROP_DORMANT: 2,
            DROP_PARTITION: 1,
        }
        assert collector.total_dropped == 4

    def test_send_time_drops_tagged_as_fault(self):
        from repro.sim.metrics import DROP_FAULT

        collector = MetricsCollector()
        collector.record_send(
            Message(kind="x", sender=1, recipient=2), dropped=True
        )
        collector.record_batch({"x": 3}, {"x": 0}, dropped=2)
        assert collector.dropped_by_reason == {DROP_FAULT: 3}

    def test_total_dropped_is_derived_from_reasons(self):
        collector = MetricsCollector()
        assert collector.total_dropped == 0
        collector.record_in_flight_loss("crash")
        collector.record_send(
            Message(kind="x", sender=1, recipient=2), dropped=True
        )
        assert collector.total_dropped == sum(
            collector.dropped_by_reason.values()
        ) == 2

    def test_delay_histogram_accumulates(self):
        collector = MetricsCollector()
        collector.record_delay(1)
        collector.record_delay(1, count=4)
        collector.record_delay(3, count=2)
        assert collector.delivery_delays == {1: 5, 3: 2}

    def test_engine_splits_crash_and_dormant_reasons(self):
        from typing import Sequence

        from repro.sim import (
            FaultPlan,
            JoinPlan,
            ProtocolNode,
            SynchronousEngine,
        )

        class Pusher(ProtocolNode):
            def on_round(self, round_no, inbox: Sequence, rng):
                for peer in sorted(self.known - {self.node_id}):
                    self.send(peer, "ping")

        # Every message is held 3 rounds (adversarial:2), so node 0's
        # early pings are still in flight when node 1 crashes at round 3
        # (in-flight crash loss) and when they reach node 3, which stays
        # dormant until round 6 (dormant loss).  Lockstep would catch the
        # crashed recipient at send time instead, tagged "fault".
        engine = SynchronousEngine(
            {0: {1, 3}, 1: {0}, 3: {0}},
            Pusher,
            delivery="adversarial:2",
            fault_plan=FaultPlan(crash_rounds={1: 3}),
            join_plan=JoinPlan(join_rounds={3: 6}),
        )
        for _ in range(5):
            engine.step()
        reasons = engine.metrics.dropped_by_reason
        assert reasons.get("crash", 0) > 0
        assert reasons.get("dormant", 0) > 0
        result = engine.run(max_rounds=8)
        assert result.dropped_by_reason == dict(engine.metrics.dropped_by_reason)
        assert result.dropped_messages == sum(result.dropped_by_reason.values())


class TestSendTimeCrashAttribution:
    """A send to an already-crashed recipient is the same physical loss
    as an in-flight crash and must carry the same ``crash`` tag — not
    ``fault``, which is reserved for the loss coin."""

    def _pusher(self):
        from typing import Sequence

        from repro.sim import ProtocolNode

        class Pusher(ProtocolNode):
            def on_round(self, round_no, inbox: Sequence, rng):
                for peer in sorted(self.known - {self.node_id}):
                    self.send(peer, "ping")

        return Pusher

    def _run(self, fast_path: bool, loss_rate: float = 0.0):
        from repro.sim import FaultPlan, SynchronousEngine

        engine = SynchronousEngine(
            {0: {1}, 1: {0}, 2: {1}},
            self._pusher(),
            fault_plan=FaultPlan(loss_rate=loss_rate, crash_rounds={1: 2}, seed=3),
            fast_path=fast_path,
        )
        for _ in range(4):
            engine.step()
        return engine

    def test_send_to_crashed_recipient_tagged_crash(self):
        for fast_path in (False, True):
            engine = self._run(fast_path)
            reasons = dict(engine.metrics.dropped_by_reason)
            # Node 1 crashes at round 2; every later send targeting it is
            # caught at send time.  No loss coin runs, so no fault drops.
            assert reasons.get("crash", 0) > 0, fast_path
            assert "fault" not in reasons, fast_path

    def test_loss_coin_stream_survives_the_split(self):
        # With a loss rate active, the coin is consumed for crash-bound
        # sends too; both engine paths must agree on the whole split.
        legacy = self._run(False, loss_rate=0.4)
        fast = self._run(True, loss_rate=0.4)
        assert dict(legacy.metrics.dropped_by_reason) == dict(
            fast.metrics.dropped_by_reason
        )
        assert legacy.metrics.total_messages == fast.metrics.total_messages

    def test_injector_send_drop_reason_split(self):
        from repro.sim.faults import FaultInjector, FaultPlan
        from repro.sim.metrics import DROP_CRASH, DROP_FAULT

        injector = FaultInjector(FaultPlan(loss_rate=1.0, crash_rounds={9: 1}), 0)
        injector.apply_crashes(1)
        assert injector.send_drop_reason(1, 9) == DROP_CRASH
        assert injector.send_drop_reason(1, 2) == DROP_FAULT
        clean = FaultInjector(FaultPlan(), 0)
        assert clean.send_drop_reason(1, 2) is None


class TestEngineInFlightLoss:
    def test_message_to_node_crashing_on_delivery_round_is_lost(self):
        from typing import Sequence

        from repro.sim import FaultPlan, ProtocolNode, SynchronousEngine

        class Pusher(ProtocolNode):
            def on_round(self, round_no, inbox: Sequence, rng):
                for peer in sorted(self.known - {self.node_id}):
                    self.send(peer, "ping")

        # Node 1 crashes at round 2 — exactly when round-1 messages are
        # consumed; delivery already happened at the end of round 1, so
        # ground truth learned, but from round 2 on everything to node 1
        # is dropped.
        engine = SynchronousEngine(
            {0: {1}, 1: {0}, 2: {1}},
            Pusher,
            fault_plan=FaultPlan(crash_rounds={1: 2}),
        )
        engine.step()
        engine.step()
        engine.step()
        assert engine.metrics.total_dropped > 0

    def test_jitter_delivery_to_crashed_node_counts_in_flight(self):
        from typing import Sequence

        from repro.sim import FaultPlan, ProtocolNode, SynchronousEngine

        class Pusher(ProtocolNode):
            def on_round(self, round_no, inbox: Sequence, rng):
                if round_no == 1:
                    for peer in sorted(self.known - {self.node_id}):
                        self.send(peer, "ping")

        # With jitter up to 3, some round-1 messages arrive at rounds 3-4;
        # node 1 crashes at round 3, so late arrivals are in-flight losses.
        engine = SynchronousEngine(
            {0: {1}, 1: set(), 2: {1}},
            Pusher,
            seed=5,
            jitter=3,
            fault_plan=FaultPlan(crash_rounds={1: 3}),
        )
        for _ in range(6):
            engine.step()
        # All sends targeted node 1; whatever was not consumed by round 2
        # was dropped in flight.
        assert engine.metrics.total_messages == 2
