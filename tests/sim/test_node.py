"""Unit tests for the protocol-node base class."""

from __future__ import annotations

import random
from typing import Sequence

import pytest

from repro.sim.messages import Message
from repro.sim.node import ProtocolNode


class EchoNode(ProtocolNode):
    """Minimal concrete node used for base-class tests."""

    def __init__(self, node_id: int):
        super().__init__(node_id)
        self.rounds_seen = []

    def on_round(self, round_no: int, inbox: Sequence[Message], rng) -> None:
        self.rounds_seen.append((round_no, len(inbox)))


class MergeNode(ProtocolNode):
    """Uses both queued sends and an explicit return in the same round."""

    def on_round(self, round_no: int, inbox: Sequence[Message], rng):
        self.send(2, "queued")
        return [self.message(3, "returned")]


class TestProtocolNode:
    def _bound(self, node_id: int = 1, knows=(2, 3)) -> EchoNode:
        node = EchoNode(node_id)
        node.bind(knows, random.Random(0))
        return node

    def test_bind_installs_initial_knowledge(self):
        node = self._bound()
        assert node.known == {1, 2, 3}

    def test_absorb_learns_sender_and_ids(self):
        node = self._bound()
        node.absorb(Message(kind="x", sender=9, recipient=1, ids=(10, 11)))
        assert {9, 10, 11} <= node.known

    def test_send_queues_and_drains(self):
        node = self._bound()
        node.send(2, "hello", ids=(3,))
        outbox = node.drain_outbox()
        assert len(outbox) == 1
        assert outbox[0].recipient == 2
        assert node.drain_outbox() == []

    def test_self_send_is_rejected(self):
        node = self._bound()
        with pytest.raises(ValueError):
            node.send(1, "loop")

    def test_run_round_invokes_handler(self):
        node = self._bound()
        node.run_round(1, [])
        node.run_round(2, [Message(kind="x", sender=2, recipient=1)])
        assert node.rounds_seen == [(1, 0), (2, 1)]

    def test_run_round_returns_queued_then_returned(self):
        # run_round is the pure boundary: everything the round produced —
        # queued via send() or returned from on_round — comes back in one
        # outbox (queued first), and nothing is left behind.
        node = MergeNode(1)
        node.bind((2, 3), random.Random(0))
        outbox = node.run_round(1, [])
        assert [m.kind for m in outbox] == ["queued", "returned"]
        assert [m.recipient for m in outbox] == [2, 3]
        assert node.drain_outbox() == []

    def test_learn_adds_ids_and_sender(self):
        node = self._bound()
        node.learn((7,), sender=8)
        assert {7, 8} <= node.known
        node.learn(sender=None)  # no-op
        assert node.known == {1, 2, 3, 7, 8}

    def test_others_known_excludes_self(self):
        node = self._bound()
        assert node.others_known == {2, 3}

    def test_halt_is_advisory(self):
        node = self._bound()
        node.halt()
        assert node.halted
        node.run_round(1, [])  # still runs
        assert node.rounds_seen
