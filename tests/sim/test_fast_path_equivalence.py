"""Differential tests: the dense fast path must be bit-identical to the
legacy engine path.

The fast path (``SynchronousEngine(fast_path=True)``) reimplements the
round loop with dense-index bitmasks, candidate-mask learning, batched
metrics, and completion short-circuits.  Its only correctness argument is
this suite: every registry algorithm, across topologies, id namespaces,
goals, jitter, faults, and churn, must produce *exactly* the same
:class:`RunResult` — including per-kind counters and the per-round stats
trajectory — and the same ground-truth knowledge and weak leader.

One caveat is deliberate: with ``enforce_legality=False`` equivalence is
promised only for *legal* traffic (the documented contract of disabling
the check).  Illegal traffic is exercised with enforcement **on**, where
both paths must raise the identical :class:`ProtocolViolation`.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import algorithm_names, get_algorithm
from repro.graphs import make_topology
from repro.sim import SynchronousEngine
from repro.sim.churn import JoinPlan
from repro.sim.errors import ProtocolViolation, UnknownNodeError
from repro.sim.faults import FaultPlan, crash_fraction_plan
from repro.sim.node import ProtocolNode

from ..strategies import weakly_connected_graphs

TOPOLOGY_ARGS = {
    "kout": {"k": 3},
    "gnp": {"p": 0.25},
}


def _both_paths(graph, algorithm, *, seed, enforce, goal="strong", jitter=0,
                fault_plan=None, join_plan=None):
    """Run one configuration on both paths; return (legacy, fast) engines
    and results."""
    outcome = []
    for fast in (False, True):
        spec = get_algorithm(algorithm)
        engine = SynchronousEngine(
            graph,
            spec.node_factory(),
            seed=seed,
            goal=goal,
            jitter=jitter,
            fault_plan=fault_plan,
            join_plan=join_plan,
            enforce_legality=enforce,
            fast_path=fast,
            algorithm_name=algorithm,
        )
        outcome.append((engine, engine.run(spec.round_cap(engine.n))))
    return outcome


def _assert_identical(legacy, fast):
    (engine_l, result_l), (engine_f, result_f) = legacy, fast
    assert result_l == result_f
    assert dict(engine_l.knowledge) == dict(engine_f.knowledge)
    assert engine_l.weak_leader() == engine_f.weak_leader()
    assert engine_l.alive_nodes == engine_f.alive_nodes
    assert engine_l.is_strongly_complete() == engine_f.is_strongly_complete()


@pytest.mark.parametrize("algorithm", algorithm_names())
@pytest.mark.parametrize("topology,id_space", [("kout", "dense"), ("path", "random")])
@pytest.mark.parametrize("enforce", [True, False])
def test_all_algorithms_match(algorithm, topology, id_space, enforce):
    graph = make_topology(
        topology, 20, seed=9, id_space=id_space, **TOPOLOGY_ARGS.get(topology, {})
    )
    legacy, fast = _both_paths(graph, algorithm, seed=42, enforce=enforce)
    _assert_identical(legacy, fast)


@pytest.mark.parametrize("jitter", [1, 3])
@pytest.mark.parametrize("enforce", [True, False])
def test_jitter_match(jitter, enforce):
    graph = make_topology("kout", 18, seed=4, k=3)
    legacy, fast = _both_paths(
        graph, "namedropper", seed=7, enforce=enforce, jitter=jitter
    )
    _assert_identical(legacy, fast)


@pytest.mark.parametrize("algorithm", ["namedropper", "sublog", "flooding"])
@pytest.mark.parametrize("enforce", [True, False])
def test_faults_and_churn_match(algorithm, enforce):
    graph = make_topology("kout", 24, seed=5, k=3)
    loss = FaultPlan(loss_rate=0.15, seed=3)
    crashes = crash_fraction_plan(graph.node_ids, 0.2, 3, seed=7)
    joins = JoinPlan(join_rounds={node: 4 for node in sorted(graph.node_ids)[:5]})
    for fault_plan, join_plan, goal, jitter in [
        (loss, None, "strong_alive", 1),
        (crashes, None, "strong_alive", 0),
        (None, joins, "weak", 0),
    ]:
        legacy, fast = _both_paths(
            graph,
            algorithm,
            seed=42,
            enforce=enforce,
            goal=goal,
            jitter=jitter,
            fault_plan=fault_plan,
            join_plan=join_plan,
        )
        _assert_identical(legacy, fast)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    graph=weakly_connected_graphs(max_nodes=14),
    algorithm=st.sampled_from(algorithm_names()),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    enforce=st.booleans(),
    jitter=st.integers(min_value=0, max_value=2),
    loss=st.sampled_from([0.0, 0.2]),
)
def test_property_differential(graph, algorithm, seed, enforce, jitter, loss):
    fault_plan = FaultPlan(loss_rate=loss, seed=seed % 97) if loss else None
    legacy, fast = _both_paths(
        graph,
        algorithm,
        seed=seed,
        enforce=enforce,
        jitter=jitter,
        fault_plan=fault_plan,
    )
    _assert_identical(legacy, fast)


class _UnknownIdNode(ProtocolNode):
    """Carries an unlearned id in round 2 (a model violation)."""

    def on_round(self, round_no, inbox):
        from repro.sim.messages import Message

        if round_no == 2:
            peer = min(self.known - {self.node_id})
            self._outbox.append(
                Message(
                    kind="cheat",
                    sender=self.node_id,
                    recipient=peer,
                    ids=frozenset({987654321}),
                )
            )


class _UnknownRecipientNode(ProtocolNode):
    """Messages a machine that does not exist."""

    def on_round(self, round_no, inbox):
        from repro.sim.messages import Message

        if round_no == 1 and self.node_id == min(self.known):
            self._outbox.append(
                Message(kind="ghost", sender=self.node_id, recipient=987654321)
            )


@pytest.mark.parametrize("fast", [False, True])
def test_protocol_violation_identical(fast):
    graph = {0: {1}, 1: {0}, 2: {0, 1}}
    engine = SynchronousEngine(
        graph, _UnknownIdNode, seed=1, enforce_legality=True, fast_path=fast
    )
    with pytest.raises(ProtocolViolation) as excinfo:
        for _ in range(4):
            engine.step()
    assert "carries unknown id 987654321" in str(excinfo.value)


def test_protocol_violation_messages_match_across_paths():
    graph = {0: {1}, 1: {0}, 2: {0, 1}}
    errors = []
    for fast in (False, True):
        engine = SynchronousEngine(
            graph, _UnknownIdNode, seed=1, enforce_legality=True, fast_path=fast
        )
        with pytest.raises(ProtocolViolation) as excinfo:
            for _ in range(4):
                engine.step()
        errors.append(str(excinfo.value))
    assert errors[0] == errors[1]


@pytest.mark.parametrize("enforce", [True, False])
@pytest.mark.parametrize("fast", [False, True])
def test_unknown_recipient_raises_on_both_paths(enforce, fast):
    graph = {0: {1}, 1: {0}}
    engine = SynchronousEngine(
        graph,
        _UnknownRecipientNode,
        seed=1,
        enforce_legality=enforce,
        fast_path=fast,
    )
    expected = ProtocolViolation if enforce else UnknownNodeError
    with pytest.raises(expected):
        for _ in range(3):
            engine.step()


def test_knowledge_property_is_lazy_but_current():
    """On the no-enforcement fast path the sets are materialized on
    demand — and must always reflect the bitmask state when read."""
    graph = make_topology("kout", 16, seed=2, k=3)
    spec = get_algorithm("namedropper")
    engine = SynchronousEngine(
        graph,
        spec.node_factory(),
        seed=5,
        enforce_legality=False,
        fast_path=True,
    )
    reference = SynchronousEngine(
        graph, spec.node_factory(), seed=5, enforce_legality=False, fast_path=False
    )
    for _ in range(4):
        engine.step()
        reference.step()
        assert dict(engine.knowledge) == dict(reference.knowledge)
