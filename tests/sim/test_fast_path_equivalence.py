"""Differential tests: the dense fast path must be bit-identical to the
legacy engine path.

The fast path (``SynchronousEngine(fast_path=True)``) reimplements the
round loop with dense-index bitmasks, candidate-mask learning, batched
metrics, and completion short-circuits.  Its only correctness argument is
this suite: every registry algorithm, across topologies, id namespaces,
goals, jitter, faults, and churn, must produce *exactly* the same
:class:`RunResult` — including per-kind counters and the per-round stats
trajectory — and the same ground-truth knowledge and weak leader.

One caveat is deliberate: with ``enforce_legality=False`` equivalence is
promised only for *legal* traffic (the documented contract of disabling
the check).  Illegal traffic is exercised with enforcement **on**, where
both paths must raise the identical :class:`ProtocolViolation`.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import algorithm_names, get_algorithm
from repro.graphs import make_topology
from repro.sim import SynchronousEngine
from repro.sim.churn import JoinPlan
from repro.sim.errors import ProtocolViolation, UnknownNodeError
from repro.sim.faults import FaultPlan, crash_fraction_plan
from repro.sim.node import ProtocolNode
from repro.sim.transport import BoundedJitter

from ..strategies import weakly_connected_graphs

TOPOLOGY_ARGS = {
    "kout": {"k": 3},
    "gnp": {"p": 0.25},
}


def _both_paths(graph, algorithm, *, seed, enforce, goal="strong", jitter=0,
                delivery=None, fault_plan=None, join_plan=None):
    """Run one configuration on both paths; return (legacy, fast) engines
    and results."""
    outcome = []
    for fast in (False, True):
        spec = get_algorithm(algorithm)
        engine = SynchronousEngine(
            graph,
            spec.node_factory(),
            seed=seed,
            goal=goal,
            jitter=jitter,
            delivery=delivery,
            fault_plan=fault_plan,
            join_plan=join_plan,
            enforce_legality=enforce,
            fast_path=fast,
            algorithm_name=algorithm,
        )
        outcome.append((engine, engine.run(spec.round_cap(engine.n))))
    return outcome


def _assert_identical(legacy, fast):
    (engine_l, result_l), (engine_f, result_f) = legacy, fast
    assert result_l == result_f
    assert dict(engine_l.knowledge) == dict(engine_f.knowledge)
    assert engine_l.weak_leader() == engine_f.weak_leader()
    assert engine_l.alive_nodes == engine_f.alive_nodes
    assert engine_l.is_strongly_complete() == engine_f.is_strongly_complete()


@pytest.mark.parametrize("algorithm", algorithm_names())
@pytest.mark.parametrize("topology,id_space", [("kout", "dense"), ("path", "random")])
@pytest.mark.parametrize("enforce", [True, False])
def test_all_algorithms_match(algorithm, topology, id_space, enforce):
    graph = make_topology(
        topology, 20, seed=9, id_space=id_space, **TOPOLOGY_ARGS.get(topology, {})
    )
    legacy, fast = _both_paths(graph, algorithm, seed=42, enforce=enforce)
    _assert_identical(legacy, fast)


@pytest.mark.parametrize("jitter", [1, 3])
@pytest.mark.parametrize("enforce", [True, False])
def test_jitter_match(jitter, enforce):
    graph = make_topology("kout", 18, seed=4, k=3)
    legacy, fast = _both_paths(
        graph, "namedropper", seed=7, enforce=enforce, jitter=jitter
    )
    _assert_identical(legacy, fast)


# Pre-refactor signatures of the engine's *inline* jitter implementation
# (captured from commit a023060, before delivery semantics moved into
# repro.sim.transport): kout graph, n=18, graph seed 4, k=3, engine seed
# 7, enforce_legality=True, max_rounds=4000.  The knowledge hash covers
# every machine's final ground-truth set.  BoundedJitter through the
# transport layer must keep reproducing these bit-for-bit on both engine
# paths — this is the refactor's backward-compatibility contract.
_JITTER_GOLDENS = {
    # (algorithm, jitter): (completed, rounds, messages, pointers, dropped, khash)
    ("flooding", 1): (True, 4, 286, 1527, 0, "9961a19949b0"),
    ("flooding", 3): (True, 6, 377, 1520, 0, "9961a19949b0"),
    ("namedropper", 1): (True, 9, 162, 1532, 0, "9961a19949b0"),
    ("namedropper", 3): (True, 11, 198, 1837, 0, "9961a19949b0"),
    ("rpj", 1): (True, 9, 290, 1397, 0, "9961a19949b0"),
    ("rpj", 3): (True, 12, 382, 1698, 0, "9961a19949b0"),
    ("sublog", 1): (True, 21, 293, 820, 0, "9961a19949b0"),
    ("sublog", 3): (True, 35, 521, 1173, 0, "9961a19949b0"),
    ("sublogcoin", 1): (True, 39, 464, 917, 0, "9961a19949b0"),
    ("sublogcoin", 3): (True, 41, 638, 1433, 0, "9961a19949b0"),
    ("swamping", 1): (True, 3, 436, 5062, 0, "9961a19949b0"),
    ("swamping", 3): (True, 4, 601, 7127, 0, "9961a19949b0"),
}

# Same contract under fault injection (send-time loss coin interleaved
# with the jitter RNG): namedropper, kout n=24 graph seed 5, engine seed
# 42, jitter 2, loss_rate 0.15 fault seed 3.
_JITTER_LOSS_GOLDEN = (True, 13, 312, 3940, 45, "8dcf3f3b1291")


def _knowledge_hash(engine):
    canonical = sorted(
        (node, tuple(sorted(known))) for node, known in engine.knowledge.items()
    )
    return hashlib.sha256(repr(canonical).encode()).hexdigest()[:12]


def _golden_signature(engine, result):
    return (
        result.completed,
        result.rounds,
        result.messages,
        result.pointers,
        result.dropped_messages,
        _knowledge_hash(engine),
    )


def _run_golden(algorithm, *, fast, graph, seed, fault_plan=None, **delivery_kw):
    engine = SynchronousEngine(
        graph,
        get_algorithm(algorithm).node_factory(),
        seed=seed,
        fault_plan=fault_plan,
        enforce_legality=True,
        fast_path=fast,
        algorithm_name=algorithm,
        **delivery_kw,
    )
    return engine, engine.run(max_rounds=4000)


@pytest.mark.parametrize("algorithm,jitter", sorted(_JITTER_GOLDENS))
def test_bounded_jitter_matches_pre_refactor_goldens(algorithm, jitter):
    """BoundedJitter through the transport layer is bit-identical to the
    pre-refactor inline ``jitter=J`` — same rounds, messages, pointers,
    and final knowledge — on both engine paths, however it is spelled
    (``jitter=`` alias, model instance, or spec string)."""
    graph = make_topology("kout", 18, seed=4, k=3)
    want = _JITTER_GOLDENS[(algorithm, jitter)]
    for fast in (False, True):
        spellings = [
            {"jitter": jitter},
            {"delivery": BoundedJitter(jitter)},
            {"delivery": f"jitter:{jitter}"},
        ]
        results = []
        for kw in spellings:
            engine, result = _run_golden(
                algorithm, fast=fast, graph=graph, seed=7, **kw
            )
            assert _golden_signature(engine, result) == want, (fast, kw)
            results.append(result)
        # The spellings are not merely signature-equal: the full results
        # (per-kind counters, per-round trajectories) coincide.
        assert results[0] == results[1] == results[2]


@pytest.mark.parametrize("fast", [False, True])
def test_bounded_jitter_with_loss_matches_golden(fast):
    graph = make_topology("kout", 24, seed=5, k=3)
    plan = FaultPlan(loss_rate=0.15, seed=3)
    engine_a, result_a = _run_golden(
        "namedropper", fast=fast, graph=graph, seed=42, fault_plan=plan, jitter=2
    )
    engine_b, result_b = _run_golden(
        "namedropper",
        fast=fast,
        graph=graph,
        seed=42,
        fault_plan=plan,
        delivery=BoundedJitter(2),
    )
    assert _golden_signature(engine_a, result_a) == _JITTER_LOSS_GOLDEN
    assert _golden_signature(engine_b, result_b) == _JITTER_LOSS_GOLDEN
    assert result_a == result_b
    # The reason split accounts for every loss: all 45 are send-time
    # fault drops (no crashes or churn in this configuration).
    assert result_a.dropped_by_reason == {"fault": 45}


@pytest.mark.parametrize(
    "delivery",
    ["adversarial:2", "perlink:2", "partition:3-6", "jitter:2"],
)
@pytest.mark.parametrize("algorithm", ["sublog", "namedropper", "flooding"])
@pytest.mark.parametrize("enforce", [True, False])
def test_delivery_models_match_across_paths(delivery, algorithm, enforce):
    """Every delivery model produces identical results on both engine
    paths (completion itself is model-dependent and not asserted here)."""
    graph = make_topology("kout", 20, seed=9, k=3)
    legacy, fast = _both_paths(
        graph, algorithm, seed=42, enforce=enforce, delivery=delivery
    )
    _assert_identical(legacy, fast)


def test_delivery_and_jitter_are_mutually_exclusive():
    graph = {0: {1}, 1: {0}}
    with pytest.raises(ValueError, match="not both"):
        SynchronousEngine(graph, _UnknownIdNode, jitter=1, delivery="lockstep")


@pytest.mark.parametrize("fast", [False, True])
def test_protocol_violation_identical_under_transport_jitter(fast):
    """The legality guard raises the same error text when the violating
    traffic flows through a transport-layer delivery model."""
    graph = {0: {1}, 1: {0}, 2: {0, 1}}
    engine = SynchronousEngine(
        graph,
        _UnknownIdNode,
        seed=1,
        delivery=BoundedJitter(2),
        enforce_legality=True,
        fast_path=fast,
    )
    with pytest.raises(ProtocolViolation) as excinfo:
        for _ in range(4):
            engine.step()
    assert "carries unknown id 987654321" in str(excinfo.value)


@pytest.mark.parametrize("algorithm", ["namedropper", "sublog", "flooding"])
@pytest.mark.parametrize("enforce", [True, False])
def test_faults_and_churn_match(algorithm, enforce):
    graph = make_topology("kout", 24, seed=5, k=3)
    loss = FaultPlan(loss_rate=0.15, seed=3)
    crashes = crash_fraction_plan(graph.node_ids, 0.2, 3, seed=7)
    joins = JoinPlan(join_rounds={node: 4 for node in sorted(graph.node_ids)[:5]})
    for fault_plan, join_plan, goal, jitter in [
        (loss, None, "strong_alive", 1),
        (crashes, None, "strong_alive", 0),
        (None, joins, "weak", 0),
    ]:
        legacy, fast = _both_paths(
            graph,
            algorithm,
            seed=42,
            enforce=enforce,
            goal=goal,
            jitter=jitter,
            fault_plan=fault_plan,
            join_plan=join_plan,
        )
        _assert_identical(legacy, fast)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    graph=weakly_connected_graphs(max_nodes=14),
    algorithm=st.sampled_from(algorithm_names()),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    enforce=st.booleans(),
    jitter=st.integers(min_value=0, max_value=2),
    loss=st.sampled_from([0.0, 0.2]),
)
def test_property_differential(graph, algorithm, seed, enforce, jitter, loss):
    fault_plan = FaultPlan(loss_rate=loss, seed=seed % 97) if loss else None
    legacy, fast = _both_paths(
        graph,
        algorithm,
        seed=seed,
        enforce=enforce,
        jitter=jitter,
        fault_plan=fault_plan,
    )
    _assert_identical(legacy, fast)


class _UnknownIdNode(ProtocolNode):
    """Carries an unlearned id in round 2 (a model violation)."""

    def on_round(self, round_no, inbox, rng):
        from repro.sim.messages import Message

        if round_no == 2:
            peer = min(self.known - {self.node_id})
            self._outbox.append(
                Message(
                    kind="cheat",
                    sender=self.node_id,
                    recipient=peer,
                    ids=frozenset({987654321}),
                )
            )


class _UnknownRecipientNode(ProtocolNode):
    """Messages a machine that does not exist."""

    def on_round(self, round_no, inbox, rng):
        from repro.sim.messages import Message

        if round_no == 1 and self.node_id == min(self.known):
            self._outbox.append(
                Message(kind="ghost", sender=self.node_id, recipient=987654321)
            )


@pytest.mark.parametrize("fast", [False, True])
def test_protocol_violation_identical(fast):
    graph = {0: {1}, 1: {0}, 2: {0, 1}}
    engine = SynchronousEngine(
        graph, _UnknownIdNode, seed=1, enforce_legality=True, fast_path=fast
    )
    with pytest.raises(ProtocolViolation) as excinfo:
        for _ in range(4):
            engine.step()
    assert "carries unknown id 987654321" in str(excinfo.value)


def test_protocol_violation_messages_match_across_paths():
    graph = {0: {1}, 1: {0}, 2: {0, 1}}
    errors = []
    for fast in (False, True):
        engine = SynchronousEngine(
            graph, _UnknownIdNode, seed=1, enforce_legality=True, fast_path=fast
        )
        with pytest.raises(ProtocolViolation) as excinfo:
            for _ in range(4):
                engine.step()
        errors.append(str(excinfo.value))
    assert errors[0] == errors[1]


@pytest.mark.parametrize("enforce", [True, False])
@pytest.mark.parametrize("fast", [False, True])
def test_unknown_recipient_raises_on_both_paths(enforce, fast):
    graph = {0: {1}, 1: {0}}
    engine = SynchronousEngine(
        graph,
        _UnknownRecipientNode,
        seed=1,
        enforce_legality=enforce,
        fast_path=fast,
    )
    expected = ProtocolViolation if enforce else UnknownNodeError
    with pytest.raises(expected):
        for _ in range(3):
            engine.step()


def test_knowledge_property_is_lazy_but_current():
    """On the no-enforcement fast path the sets are materialized on
    demand — and must always reflect the bitmask state when read."""
    graph = make_topology("kout", 16, seed=2, k=3)
    spec = get_algorithm("namedropper")
    engine = SynchronousEngine(
        graph,
        spec.node_factory(),
        seed=5,
        enforce_legality=False,
        fast_path=True,
    )
    reference = SynchronousEngine(
        graph, spec.node_factory(), seed=5, enforce_legality=False, fast_path=False
    )
    for _ in range(4):
        engine.step()
        reference.step()
        assert dict(engine.knowledge) == dict(reference.knowledge)
