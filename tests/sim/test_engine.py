"""Unit tests for the synchronous engine: legality, timing, goals."""

from __future__ import annotations

from typing import Sequence

import pytest

from repro.sim.engine import SynchronousEngine, default_max_rounds
from repro.sim.errors import EngineStateError, ProtocolViolation, UnknownNodeError
from repro.sim.faults import FaultPlan
from repro.sim.messages import Message
from repro.sim.node import ProtocolNode
from repro.sim.observers import Observer


class SilentNode(ProtocolNode):
    """Sends nothing, ever."""

    def on_round(self, round_no: int, inbox: Sequence[Message], rng) -> None:
        pass


class GossipNode(ProtocolNode):
    """Sends full knowledge to everyone known, every round (swamping)."""

    def on_round(self, round_no: int, inbox: Sequence[Message], rng) -> None:
        for peer in sorted(self.known - {self.node_id}):
            self.send(peer, "gossip", ids=self.known - {self.node_id, peer})


class CheaterNode(ProtocolNode):
    """Tries to message a machine it does not know."""

    def __init__(self, node_id: int, cheat_target: int):
        super().__init__(node_id)
        self.cheat_target = cheat_target

    def on_round(self, round_no: int, inbox: Sequence[Message], rng) -> None:
        if self.cheat_target not in self.known:
            self.send(self.cheat_target, "cheat")


class IdSmuggler(ProtocolNode):
    """Tries to include an id it does not know in a message."""

    def on_round(self, round_no: int, inbox: Sequence[Message], rng) -> None:
        for peer in self.known - {self.node_id}:
            self.send(peer, "smuggle", ids=(999,))
            break


def line(n: int) -> dict:
    """Adjacency for a directed path 0 -> 1 -> ... -> n-1."""
    return {i: ({i + 1} if i + 1 < n else set()) for i in range(n)}


class TestEngineBasics:
    def test_single_node_completes_immediately(self):
        engine = SynchronousEngine({0: set()}, SilentNode)
        result = engine.run()
        assert result.completed
        assert result.rounds == 0
        assert result.messages == 0

    def test_two_node_gossip_completes_in_one_round(self):
        # 0 knows 1; in round 1, 0 messages 1, so 1 learns 0's address.
        engine = SynchronousEngine({0: {1}, 1: set()}, GossipNode)
        result = engine.run()
        assert result.completed
        assert result.rounds == 1

    def test_gossip_squares_the_path(self):
        # Swamping doubles knowledge radius per round: the 9-node path
        # needs exactly ceil(log2(8)) = 3 rounds... plus one round for the
        # reverse edges to appear; allow the known tight window.
        engine = SynchronousEngine(line(9), GossipNode)
        result = engine.run()
        assert result.completed
        assert 3 <= result.rounds <= 5

    def test_empty_graph_is_rejected(self):
        with pytest.raises(ValueError):
            SynchronousEngine({}, SilentNode)

    def test_initially_complete_graph_needs_zero_rounds(self):
        adjacency = {0: {1, 2}, 1: {0, 2}, 2: {0, 1}}
        result = SynchronousEngine(adjacency, SilentNode).run()
        assert result.completed
        assert result.rounds == 0

    def test_stray_initial_neighbor_is_rejected(self):
        with pytest.raises(UnknownNodeError):
            SynchronousEngine({0: {5}}, SilentNode)

    def test_incomplete_run_reports_cap(self):
        engine = SynchronousEngine(line(4), SilentNode)
        result = engine.run(max_rounds=7)
        assert not result.completed
        assert result.rounds == 7

    def test_engine_cannot_run_twice(self):
        engine = SynchronousEngine({0: {1}, 1: set()}, GossipNode)
        engine.run()
        with pytest.raises(EngineStateError):
            engine.run()


class TestLegality:
    def test_unknown_recipient_raises(self):
        engine = SynchronousEngine(
            {0: {1}, 1: set(), 2: {0}},
            lambda node_id: CheaterNode(node_id, cheat_target=(node_id + 2) % 3),
        )
        with pytest.raises(ProtocolViolation):
            engine.run(max_rounds=3)

    def test_unknown_id_in_payload_raises(self):
        engine = SynchronousEngine({0: {1}, 1: {0}, 2: {0}}, IdSmuggler)
        with pytest.raises(ProtocolViolation):
            engine.run(max_rounds=3)

    def test_legality_check_can_be_disabled(self):
        # With enforcement off, the smuggled id (which names no simulated
        # machine) is ignored by ground truth instead of raising.
        engine = SynchronousEngine(
            {0: {1}, 1: {0}, 2: {0}}, IdSmuggler, enforce_legality=False
        )
        engine.step()
        engine.step()
        assert 999 not in engine.knowledge[0]
        assert 999 not in engine.knowledge[1]

    def test_learning_rule_sender_and_ids(self):
        engine = SynchronousEngine({0: {1}, 1: set(), 2: {0}}, SilentNode)
        # Manually drive one round with a handcrafted send from node 2.
        node = engine.nodes[2]
        node.send(0, "hi")
        engine.step()
        assert 2 in engine.knowledge[0]


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        def run(seed: int):
            engine = SynchronousEngine(line(8), GossipNode, seed=seed)
            result = engine.run()
            return (result.rounds, result.messages, result.pointers)

        assert run(5) == run(5)


class TestGoals:
    def test_weak_goal_on_star(self):
        # Leaves know the hub; hub learns leaves as they message it.
        adjacency = {0: set(), **{i: {0} for i in range(1, 6)}}
        engine = SynchronousEngine(adjacency, GossipNode, goal="weak")
        result = engine.run()
        assert result.completed
        assert result.rounds == 1  # all leaves hit the hub in round 1

    def test_weak_leader_identification(self):
        adjacency = {0: set(), **{i: {0} for i in range(1, 4)}}
        engine = SynchronousEngine(adjacency, GossipNode, goal="weak")
        engine.run()
        assert engine.weak_leader() == 0

    def test_unknown_goal_rejected(self):
        with pytest.raises(ValueError):
            SynchronousEngine({0: set()}, SilentNode, goal="bogus")

    def test_custom_goal_predicate(self):
        calls = []

        def goal(engine) -> bool:
            calls.append(engine.round_no)
            return engine.round_no >= 2

        engine = SynchronousEngine(line(6), GossipNode, goal=goal)
        result = engine.run()
        assert result.rounds == 2
        assert calls


class TestCrashes:
    def test_crashed_node_stops_participating(self):
        plan = FaultPlan(crash_rounds={1: 1})
        engine = SynchronousEngine(
            {0: {1}, 1: {2}, 2: set()}, GossipNode, fault_plan=plan
        )
        result = engine.run(max_rounds=10)
        # Node 1 crashed before ever sending: 2's address can never reach 0.
        assert not result.completed
        assert 2 not in engine.knowledge[0]

    def test_strong_alive_ignores_crashed(self):
        plan = FaultPlan(crash_rounds={2: 1})
        adjacency = {0: {1}, 1: {0}, 2: set()}
        engine = SynchronousEngine(
            adjacency, GossipNode, fault_plan=plan, goal="strong_alive"
        )
        result = engine.run(max_rounds=10)
        assert result.completed  # 0 and 1 know each other; 2 is dead

    def test_crashed_nodes_reported(self):
        plan = FaultPlan(crash_rounds={1: 2})
        engine = SynchronousEngine(line(3), GossipNode, fault_plan=plan)
        engine.run(max_rounds=5)
        assert engine.crashed_nodes == frozenset({1})
        assert 1 not in engine.alive_nodes


class TestObserversAndMetrics:
    def test_observer_hooks_fire(self):
        events = []

        class Recorder(Observer):
            def on_setup(self, engine):
                events.append("setup")

            def on_round_end(self, engine, round_no):
                events.append(round_no)

            def on_finish(self, engine, completed):
                events.append(("finish", completed))

            def extra(self):
                return {"events": len(events)}

        engine = SynchronousEngine(
            {0: {1}, 1: set()}, GossipNode, observers=[Recorder()]
        )
        result = engine.run()
        assert events[0] == "setup"
        assert events[-1] == ("finish", True)
        assert result.extra["events"] == len(events)

    def test_round_stats_cover_every_round(self):
        engine = SynchronousEngine(line(5), GossipNode)
        result = engine.run()
        assert len(result.round_stats) == result.rounds
        assert sum(s.messages for s in result.round_stats) == result.messages

    def test_result_metadata(self):
        engine = SynchronousEngine(
            {0: {1}, 1: set()},
            GossipNode,
            algorithm_name="gossip-test",
            params={"p": 1},
            seed=44,
        )
        result = engine.run()
        assert result.algorithm == "gossip-test"
        assert result.params == {"p": 1}
        assert result.seed == 44
        assert result.n == 2


class TestDefaultMaxRounds:
    def test_grows_with_n(self):
        assert default_max_rounds(2) < default_max_rounds(1 << 20)

    def test_is_generous(self):
        assert default_max_rounds(1024) > 200
