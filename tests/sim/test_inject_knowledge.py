"""The out-of-band knowledge-injection seam, on every backend."""

from __future__ import annotations

from typing import Sequence

import pytest

from repro.sim import vector_available
from repro.sim.engine import SynchronousEngine
from repro.sim.errors import EngineStateError, UnknownNodeError
from repro.sim.faults import FaultPlan
from repro.sim.messages import Message
from repro.sim.node import ProtocolNode

BACKENDS = ("legacy", "fast") + (("vector",) if vector_available() else ())


class SilentNode(ProtocolNode):
    def on_round(self, round_no: int, inbox: Sequence[Message], rng) -> None:
        pass


class GossipNode(ProtocolNode):
    def on_round(self, round_no: int, inbox: Sequence[Message], rng) -> None:
        for peer in sorted(self.known - {self.node_id}):
            self.send(peer, "gossip", ids=self.known - {self.node_id, peer})


def line(n: int) -> dict:
    return {i: ({i + 1} if i + 1 < n else set()) for i in range(n)}


@pytest.mark.parametrize("backend", BACKENDS)
class TestInjectKnowledge:
    def test_injection_lands_in_knowledge_and_node(self, backend):
        engine = SynchronousEngine(line(6), SilentNode, backend=backend)
        assert engine.inject_knowledge(0, {3, 4})
        assert engine.knowledge[0] >= {3, 4}
        assert {3, 4} <= engine.nodes[0].known

    def test_injection_counts_match_across_backends(self, backend):
        engine = SynchronousEngine(line(6), SilentNode, backend=backend)
        engine.inject_knowledge(0, {2, 3})
        sizes = {node: len(ids) for node, ids in engine.knowledge.items()}
        # 0 knows self+1 initially, +2 injected; everyone else unchanged.
        assert sizes == {0: 4, 1: 2, 2: 2, 3: 2, 4: 2, 5: 1}

    def test_strays_and_self_are_ignored(self, backend):
        engine = SynchronousEngine(line(4), SilentNode, backend=backend)
        before = {node: set(ids) for node, ids in engine.knowledge.items()}
        assert engine.inject_knowledge(2, {2, 999})
        assert engine.knowledge == before

    def test_unknown_node_raises(self, backend):
        engine = SynchronousEngine(line(4), SilentNode, backend=backend)
        with pytest.raises(UnknownNodeError):
            engine.inject_knowledge(999, {0})

    def test_crashed_node_returns_false(self, backend):
        engine = SynchronousEngine(
            line(4),
            SilentNode,
            backend=backend,
            fault_plan=FaultPlan(crash_rounds={1: 1}),
        )
        engine.step()
        assert not engine.inject_knowledge(1, {3})
        assert 3 not in engine.knowledge[1]

    def test_finished_engine_rejects_injection(self, backend):
        engine = SynchronousEngine({0: {1}, 1: {0}}, GossipNode, backend=backend)
        engine.run(max_rounds=4)
        with pytest.raises(EngineStateError):
            engine.inject_knowledge(0, {1})

    def test_injection_can_complete_the_goal(self, backend):
        # A silent fleet never gossips; injection alone must reach closure.
        engine = SynchronousEngine(line(3), SilentNode, backend=backend)
        assert not engine.goal_reached()
        engine.inject_knowledge(0, {2})
        engine.inject_knowledge(1, {0})
        engine.inject_knowledge(2, {0, 1})
        assert engine.goal_reached()

    def test_injected_knowledge_spreads(self, backend):
        # 5 only reachable through injection; gossip then spreads it.
        graph = {0: {1}, 1: {0}, 2: {0, 1}, 3: {0}, 4: {0}, 5: set()}
        engine = SynchronousEngine(graph, GossipNode, backend=backend)
        engine.inject_knowledge(0, {5})
        result = engine.run(max_rounds=16)
        assert result.completed


def test_digests_identical_across_backends_after_injection():
    digests = set()
    for backend in BACKENDS:
        engine = SynchronousEngine(line(8), GossipNode, backend=backend, seed=3)
        engine.inject_knowledge(0, {5, 6})
        engine.step()
        engine.inject_knowledge(3, {7})
        engine.run(max_rounds=12)
        digests.add(engine.knowledge_digest())
    assert len(digests) == 1
