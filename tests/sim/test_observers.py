"""Unit tests for the shipped observers."""

from __future__ import annotations

from typing import Sequence

from repro.sim.engine import SynchronousEngine
from repro.sim.messages import Message
from repro.sim.node import ProtocolNode
from repro.sim.observers import KnowledgeSizeObserver, RoundLogObserver


class GossipNode(ProtocolNode):
    def on_round(self, round_no: int, inbox: Sequence[Message], rng) -> None:
        for peer in sorted(self.known - {self.node_id}):
            self.send(peer, "gossip", ids=self.known - {self.node_id, peer})


def line(n: int) -> dict:
    return {i: ({i + 1} if i + 1 < n else set()) for i in range(n)}


class TestKnowledgeSizeObserver:
    def test_history_covers_setup_and_rounds(self):
        observer = KnowledgeSizeObserver()
        engine = SynchronousEngine(line(6), GossipNode, observers=[observer])
        result = engine.run()
        assert len(observer.history) == result.rounds + 1  # +1 for setup
        assert observer.history[0]["round"] == 0

    def test_sizes_are_monotone_under_gossip(self):
        observer = KnowledgeSizeObserver()
        engine = SynchronousEngine(line(6), GossipNode, observers=[observer])
        engine.run()
        means = [entry["mean"] for entry in observer.history]
        assert means == sorted(means)
        assert observer.history[-1]["min"] == 6.0  # complete

    def test_extra_exposes_history(self):
        observer = KnowledgeSizeObserver()
        engine = SynchronousEngine(line(4), GossipNode, observers=[observer])
        result = engine.run()
        assert result.extra["knowledge_sizes"] == observer.history


class TestLoadObserver:
    def test_star_gossip_has_a_hotspot(self):
        from repro.sim.observers import LoadObserver

        # All five leaves gossip to the hub every round: the hub's inbox
        # is 5 while leaves receive little.
        adjacency = {0: set(), **{i: {0} for i in range(1, 6)}}
        observer = LoadObserver()
        engine = SynchronousEngine(adjacency, GossipNode, observers=[observer])
        engine.run(max_rounds=10)
        assert observer.peak_receive_load() >= 5
        assert observer.load_skew() > 1.5

    def test_uniform_exchange_has_low_skew(self):
        from repro.sim.observers import LoadObserver

        observer = LoadObserver()
        engine = SynchronousEngine(line(6), GossipNode, observers=[observer])
        engine.run()
        assert observer.load_skew() < 3.0

    def test_extra_fields(self):
        from repro.sim.observers import LoadObserver

        observer = LoadObserver()
        engine = SynchronousEngine(line(4), GossipNode, observers=[observer])
        result = engine.run()
        assert result.extra["peak_receive_load"] == observer.peak_receive_load()
        assert result.extra["load_skew"] == observer.load_skew()


class TestRoundLogObserver:
    def test_one_line_per_round(self):
        observer = RoundLogObserver()
        engine = SynchronousEngine(line(5), GossipNode, observers=[observer])
        result = engine.run()
        assert len(observer.lines) == result.rounds
        assert all("round" in ln and "msgs=" in ln for ln in observer.lines)
