"""Unit tests for deterministic RNG derivation."""

from __future__ import annotations

from repro.sim.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_same_inputs_same_seed(self):
        assert derive_seed(1, "node", 5) == derive_seed(1, "node", 5)

    def test_different_master_seed_differs(self):
        assert derive_seed(1, "node", 5) != derive_seed(2, "node", 5)

    def test_different_salt_differs(self):
        assert derive_seed(1, "node", 5) != derive_seed(1, "node", 6)
        assert derive_seed(1, "node") != derive_seed(1, "faults")

    def test_salt_path_is_unambiguous(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_seed_fits_64_bits(self):
        for salt in range(50):
            assert 0 <= derive_seed(0, salt) < 2**64

    def test_known_value_is_stable(self):
        # Guards against accidental hash-function changes that would break
        # reproducibility of recorded experiment outputs.
        assert derive_seed(0) == derive_seed(0)
        first = derive_seed(12345, "node", 7)
        assert first == derive_seed(12345, "node", 7)


class TestDeriveRng:
    def test_streams_are_reproducible(self):
        a = derive_rng(9, "x").random()
        b = derive_rng(9, "x").random()
        assert a == b

    def test_streams_are_independent(self):
        stream_a = [derive_rng(9, "a").random() for _ in range(1)]
        stream_b = [derive_rng(9, "b").random() for _ in range(1)]
        assert stream_a != stream_b
