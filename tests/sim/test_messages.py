"""Unit tests for message representation and accounting."""

from __future__ import annotations

import pytest

from repro.sim.messages import MESSAGE_HEADER_WORDS, Message, message_bits


class TestMessage:
    def test_pointer_count_counts_ids(self):
        message = Message(kind="x", sender=1, recipient=2, ids=(3, 4, 5))
        assert message.pointer_count == 3

    def test_empty_ids_have_zero_pointers(self):
        message = Message(kind="x", sender=1, recipient=2)
        assert message.pointer_count == 0

    def test_ids_accept_frozenset(self):
        message = Message(kind="x", sender=1, recipient=2, ids=frozenset({7, 8}))
        assert message.pointer_count == 2

    def test_message_is_immutable(self):
        message = Message(kind="x", sender=1, recipient=2)
        with pytest.raises(AttributeError):
            message.kind = "y"  # type: ignore[misc]

    def test_repr_is_compact(self):
        message = Message(kind="invite", sender=1, recipient=2, ids=(9,))
        text = repr(message)
        assert "invite" in text
        assert "1->2" in text
        assert "|ids|=1" in text

    def test_data_payload_is_preserved(self):
        message = Message(kind="x", sender=1, recipient=2, data=(5, True))
        assert message.data == (5, True)


class TestMessageBits:
    def test_bits_charge_header_and_pointers(self):
        message = Message(kind="x", sender=1, recipient=2, ids=(3, 4))
        assert message_bits(message, id_bits=10) == (2 + MESSAGE_HEADER_WORDS) * 10

    def test_empty_message_still_costs_header(self):
        message = Message(kind="x", sender=1, recipient=2)
        assert message_bits(message, id_bits=8) == MESSAGE_HEADER_WORDS * 8


class TestTallyByKind:
    def test_tallies_match_per_message_accounting(self):
        from repro.sim.messages import tally_by_kind

        sends = [
            Message(kind="invite", sender=1, recipient=2, ids=(3, 4)),
            Message(kind="invite", sender=2, recipient=1),
            Message(kind="report", sender=1, recipient=2, ids=(5,)),
        ]
        messages_by_kind, pointers_by_kind = tally_by_kind(sends)
        assert messages_by_kind == {"invite": 2, "report": 1}
        assert pointers_by_kind == {"invite": 2, "report": 1}

    def test_zero_pointer_kind_appears_in_both_tallies(self):
        from repro.sim.messages import tally_by_kind

        messages_by_kind, pointers_by_kind = tally_by_kind(
            [Message(kind="ping", sender=1, recipient=2)]
        )
        assert messages_by_kind == {"ping": 1}
        assert pointers_by_kind == {"ping": 0}

    def test_empty_input(self):
        from repro.sim.messages import tally_by_kind

        assert tally_by_kind([]) == ({}, {})
