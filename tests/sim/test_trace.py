"""Unit tests for the trace observer."""

from __future__ import annotations

import io

import pytest

import repro
from repro.graphs import make_topology
from repro.sim.trace import TraceEvent, TraceObserver, read_jsonl


def traced_run(**kwargs):
    observer = TraceObserver(**kwargs)
    graph = make_topology("kout", 16, seed=1, k=2)
    result = repro.discover(graph, algorithm="sublog", seed=1, observers=[observer])
    return observer, result


class TestTraceObserver:
    def test_records_every_delivered_message(self):
        observer, result = traced_run()
        delivered = result.messages - result.dropped_messages
        assert len(observer.events) == delivered

    def test_kind_filter(self):
        observer, result = traced_run(kinds=("invite",))
        assert observer.events
        assert all(event.kind == "invite" for event in observer.events)
        assert len(observer.events) == result.messages_by_kind["invite"]

    def test_node_filter(self):
        observer, _ = traced_run(nodes=(0,))
        assert observer.events
        assert all(0 in (e.sender, e.recipient) for e in observer.events)

    def test_limit_truncates(self):
        observer, _ = traced_run(limit=10)
        assert len(observer.events) == 10
        assert observer.truncated

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            TraceObserver(limit=0)

    def test_by_kind_totals(self):
        observer, result = traced_run()
        by_kind = observer.by_kind()
        assert sum(by_kind.values()) == len(observer.events)
        assert by_kind["invite"] == result.messages_by_kind["invite"]

    def test_rounds_covered_sorted(self):
        observer, result = traced_run()
        rounds = observer.rounds_covered()
        assert list(rounds) == sorted(rounds)
        assert max(rounds) <= result.rounds

    def test_format_is_readable(self):
        observer, _ = traced_run(limit=50)
        text = observer.format(max_lines=5)
        assert "->" in text
        assert "more events" in text or len(observer.events) <= 5

    def test_extra_summary(self):
        observer, result = traced_run()
        assert result.extra["trace_events"] == len(observer.events)
        assert not result.extra["trace_truncated"]
        assert not result.extra["trace_events_truncated"]
        assert not result.extra["trace_drops_truncated"]

    def test_drops_sink_truncation_is_visible(self):
        # Regression: drop-sink overflow used to be silent (only the
        # events sink set ``truncated``).  Force plenty of send-time
        # drops with a heavy loss rate and a tiny limit.
        from repro.sim import FaultPlan

        observer = TraceObserver(limit=5)
        graph = make_topology("kout", 16, seed=1, k=2)
        result = repro.discover(
            graph,
            algorithm="sublog",
            seed=1,
            fault_plan=FaultPlan(loss_rate=0.4, seed=1),
            observers=[observer],
            resilient=True,
            stagnation_phases=4,
        )
        assert result.dropped_messages > 5
        assert len(observer.drops) == 5
        assert observer.truncated_drops
        assert result.extra["trace_drops_truncated"]
        assert observer.truncated  # the OR view covers both sinks

    def test_filtered_events_do_not_flag_truncation(self):
        # Events rejected by the kind filter never count against the
        # limit, so a filtered trace under the cap stays un-truncated.
        observer, _ = traced_run(kinds=("invite",), limit=100_000)
        assert not observer.truncated_events
        assert not observer.truncated_drops


class TestJsonlRoundTrip:
    def test_round_trip(self):
        observer, _ = traced_run(limit=40)
        buffer = io.StringIO()
        count = observer.write_jsonl(buffer)
        assert count == len(observer.events)
        buffer.seek(0)
        parsed = read_jsonl(buffer)
        assert parsed == observer.events

    def test_event_format(self):
        event = TraceEvent(round_no=3, kind="join", sender=1, recipient=2, pointers=4)
        assert "r   3" in event.format()
        assert "join" in event.format()
