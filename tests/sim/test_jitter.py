"""Tests for bounded-asynchrony delivery (jitter)."""

from __future__ import annotations

import pytest

import repro
from repro.graphs import make_topology
from repro.sim import SynchronousEngine


class TestJitterBasics:
    def test_zero_jitter_is_the_synchronous_model(self):
        graph = make_topology("kout", 64, seed=2, k=3)
        plain = repro.discover(graph, algorithm="namedropper", seed=2)
        explicit = repro.discover(graph, algorithm="namedropper", seed=2, jitter=0)
        assert (plain.rounds, plain.messages, plain.pointers) == (
            explicit.rounds,
            explicit.messages,
            explicit.pointers,
        )

    def test_negative_jitter_rejected(self):
        from repro.algorithms.flooding import FloodingNode

        with pytest.raises(ValueError):
            SynchronousEngine({0: {1}, 1: set()}, FloodingNode, jitter=-1)

    def test_jitter_is_deterministic(self):
        graph = make_topology("kout", 48, seed=3, k=3)

        def signature():
            result = repro.discover(
                graph, algorithm="namedropper", seed=3, jitter=3
            )
            return (result.rounds, result.messages)

        assert signature() == signature()


class TestJitterCompletion:
    @pytest.mark.parametrize("algorithm", ("flooding", "swamping", "namedropper"))
    @pytest.mark.parametrize("jitter", (1, 3))
    def test_gossip_completes_under_jitter(self, algorithm: str, jitter: int):
        graph = make_topology("kout", 48, seed=4, k=3)
        result = repro.discover(
            graph, algorithm=algorithm, seed=4, jitter=jitter, max_rounds=2000
        )
        assert result.completed

    @pytest.mark.parametrize("jitter", (1, 2, 4))
    def test_sublog_completes_under_jitter(self, jitter: int):
        graph = make_topology("kout", 48, seed=5, k=3)
        result = repro.discover(
            graph,
            algorithm="sublog",
            seed=5,
            jitter=jitter,
            resilient=True,
            stagnation_phases=4,
            max_rounds=4000,
        )
        assert result.completed

    def test_jitter_slows_but_does_not_break_flooding(self):
        graph = make_topology("bipath", 33)
        sync = repro.discover(graph, algorithm="flooding", seed=1)
        jittered = repro.discover(
            graph, algorithm="flooding", seed=1, jitter=2, max_rounds=2000
        )
        assert jittered.completed
        assert jittered.rounds >= sync.rounds

    def test_rounds_never_below_lower_bound_under_jitter(self):
        # Jitter only delays information; the 2^t ball bound still holds
        # (a fortiori), so completion cannot come earlier than ceil(log2 D).
        import math

        graph = make_topology("path", 65)
        result = repro.discover(
            graph, algorithm="swamping", seed=1, jitter=2, max_rounds=2000
        )
        assert result.completed
        assert result.rounds >= math.ceil(math.log2(64))
