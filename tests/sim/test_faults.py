"""Unit tests for fault injection."""

from __future__ import annotations

import pytest

from repro.sim.faults import FaultInjector, FaultPlan, crash_fraction_plan


class TestFaultPlan:
    def test_rejects_bad_loss_rate(self):
        with pytest.raises(ValueError):
            FaultPlan(loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(loss_rate=-0.1)

    def test_rejects_bad_crash_round(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_rounds={1: 0})

    def test_has_faults_flag(self):
        assert not FaultPlan().has_faults
        assert FaultPlan(loss_rate=0.1).has_faults
        assert FaultPlan(crash_rounds={3: 2}).has_faults


class TestFaultInjector:
    def test_no_plan_never_drops(self):
        injector = FaultInjector(None, master_seed=1)
        assert not any(injector.should_drop(1, 2) for _ in range(100))

    def test_full_loss_always_drops(self):
        injector = FaultInjector(FaultPlan(loss_rate=1.0), master_seed=1)
        assert all(injector.should_drop(1, 2) for _ in range(20))

    def test_loss_rate_is_roughly_respected(self):
        injector = FaultInjector(FaultPlan(loss_rate=0.3), master_seed=5)
        drops = sum(injector.should_drop(1, 2) for _ in range(5000))
        assert 0.25 < drops / 5000 < 0.35

    def test_loss_is_deterministic_in_seed(self):
        def pattern(seed: int) -> list:
            injector = FaultInjector(FaultPlan(loss_rate=0.5), master_seed=seed)
            return [injector.should_drop(1, 2) for _ in range(50)]

        assert pattern(3) == pattern(3)
        assert pattern(3) != pattern(4)

    def test_crashes_apply_at_scheduled_round(self):
        plan = FaultPlan(crash_rounds={7: 3, 8: 5})
        injector = FaultInjector(plan, master_seed=0)
        assert injector.apply_crashes(1) == []
        assert injector.apply_crashes(3) == [7]
        assert injector.is_crashed(7)
        assert not injector.is_crashed(8)
        assert injector.apply_crashes(5) == [8]
        assert injector.crashed_nodes == frozenset({7, 8})

    def test_crash_is_idempotent(self):
        plan = FaultPlan(crash_rounds={7: 3})
        injector = FaultInjector(plan, master_seed=0)
        injector.apply_crashes(3)
        assert injector.apply_crashes(3) == []

    def test_messages_to_crashed_nodes_always_drop(self):
        plan = FaultPlan(crash_rounds={9: 1})
        injector = FaultInjector(plan, master_seed=0)
        injector.apply_crashes(1)
        assert all(injector.should_drop(1, 9) for _ in range(10))
        assert not injector.should_drop(1, 2)


class TestCrashFractionPlan:
    def test_crashes_requested_fraction(self):
        plan = crash_fraction_plan(range(100), 0.2, crash_round=4, seed=1)
        assert len(plan.crash_rounds) == 20
        assert all(round_no == 4 for round_no in plan.crash_rounds.values())

    def test_protected_nodes_never_crash(self):
        plan = crash_fraction_plan(range(50), 0.5, 2, seed=3, protect=[0, 1, 2])
        assert not {0, 1, 2} & set(plan.crash_rounds)

    def test_deterministic_in_seed(self):
        a = crash_fraction_plan(range(40), 0.25, 3, seed=9)
        b = crash_fraction_plan(range(40), 0.25, 3, seed=9)
        assert a.crash_rounds == b.crash_rounds

    def test_zero_fraction_crashes_nobody(self):
        plan = crash_fraction_plan(range(10), 0.0, 1, seed=0)
        assert not plan.crash_rounds

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            crash_fraction_plan(range(10), 1.1, 1, seed=0)
