"""Unit tests for the pluggable delivery-model layer."""

from __future__ import annotations

import pickle

import pytest

import repro
from repro.graphs import make_topology
from repro.sim import SynchronousEngine
from repro.sim.metrics import DROP_PARTITION
from repro.sim.trace import TraceObserver
from repro.sim.transport import (
    DELIVERY_MODELS,
    AdversarialScheduler,
    BoundedJitter,
    DeliveryModel,
    Lockstep,
    PartitionWindow,
    PerLinkLatency,
    parse_delivery,
)


class TestParseDelivery:
    def test_all_registered_families_parse(self):
        specs = {
            "lockstep": Lockstep,
            "jitter:2": BoundedJitter,
            "adversarial": AdversarialScheduler,
            "adversarial:3": AdversarialScheduler,
            "perlink": PerLinkLatency,
            "perlink:4": PerLinkLatency,
            "partition:3-6": PartitionWindow,
        }
        for spec, cls in specs.items():
            assert isinstance(parse_delivery(spec), cls), spec

    def test_registry_covers_every_family(self):
        assert set(DELIVERY_MODELS) == {
            "lockstep", "jitter", "adversarial", "perlink", "partition"
        }

    def test_arguments_are_threaded(self):
        assert parse_delivery("jitter:3").jitter == 3
        assert parse_delivery("adversarial:5").max_delay == 5
        assert parse_delivery("perlink:4").spread == 4
        window = parse_delivery("partition:3-6")
        assert (window.start, window.end) == (3, 6)

    def test_model_instances_pass_through(self):
        model = AdversarialScheduler(2)
        assert parse_delivery(model) is model

    @pytest.mark.parametrize(
        "bad",
        [
            "carrier-pigeon",
            "jitter",
            "jitter:-1",
            "jitter:abc",
            "lockstep:1",
            "partition:6",
            "partition:6-3",
            "partition:0-4",
            "adversarial:-1",
            "perlink:-2",
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_delivery(bad)

    def test_describe_round_trips(self):
        for spec in ("lockstep", "jitter:2", "adversarial:3", "perlink:1",
                     "partition:3-6"):
            model = parse_delivery(spec)
            assert parse_delivery(model.describe()).describe() == model.describe()


class TestModelSemantics:
    def test_lockstep_is_uniform_one(self):
        assert Lockstep.uniform_delay == 1

    def test_jitter_zero_degenerates_to_uniform(self):
        assert BoundedJitter(0).uniform_delay == 1
        assert BoundedJitter(2).uniform_delay is None

    def test_adversarial_is_uniform_at_the_bound(self):
        assert AdversarialScheduler(3).uniform_delay == 4

    def test_perlink_delays_are_stable_within_a_run(self):
        graph = make_topology("kout", 16, seed=2, k=3)
        engine = SynchronousEngine(graph, _node_factory(), seed=9)
        bound = PerLinkLatency(spread=3).bind(engine)
        nodes = sorted(engine.node_ids)
        for sender, recipient in zip(nodes, nodes[1:]):
            first = bound.delay(sender, recipient, 1)
            assert 1 <= first <= 4
            assert bound.delay(sender, recipient, 7) == first

    def test_perlink_overrides_win(self):
        graph = {0: {1}, 1: {0}}
        engine = SynchronousEngine(graph, _node_factory(), seed=0)
        bound = PerLinkLatency(spread=3, delays={(0, 1): 9}).bind(engine)
        assert bound.delay(0, 1, 1) == 9

    def test_partition_default_group_is_lower_half(self):
        graph = {0: {1, 2, 3}, 1: {0}, 2: {0}, 3: {0}}
        engine = SynchronousEngine(graph, _node_factory(), seed=0)
        bound = PartitionWindow(2, 4).bind(engine)
        assert bound.drop_reason(0, 2, 3) == DROP_PARTITION  # cross
        assert bound.drop_reason(0, 1, 3) is None  # same side
        assert bound.drop_reason(0, 2, 5) is None  # window closed
        assert bound.drop_reason(0, 2, 1) is None  # window not open yet

    def test_binding_leaves_the_spec_clean(self):
        """A spec instance is reusable: binding must not leak per-run
        state into it, so one model can drive a whole sweep."""
        graph = make_topology("kout", 12, seed=1, k=2)
        spec = BoundedJitter(2)
        first = SynchronousEngine(
            graph, _node_factory(), seed=3, delivery=spec
        ).run(max_rounds=500)
        second = SynchronousEngine(
            graph, _node_factory(), seed=3, delivery=spec
        ).run(max_rounds=500)
        assert first == second
        assert not hasattr(spec, "_future")

    def test_specs_are_picklable(self):
        for spec in ("lockstep", "jitter:2", "adversarial:3", "perlink:2",
                     "partition:3-6"):
            model = parse_delivery(spec)
            clone = pickle.loads(pickle.dumps(model))
            assert clone.describe() == model.describe()


def _node_factory():
    from repro.algorithms.registry import get_algorithm

    return get_algorithm("namedropper").node_factory()


class TestEngineIntegration:
    def _run(self, delivery, algorithm="namedropper", n=20, **kwargs):
        graph = make_topology("kout", n, seed=6, k=3)
        return repro.discover(
            graph, algorithm=algorithm, seed=11, delivery=delivery,
            max_rounds=2000, **kwargs,
        )

    def test_lockstep_is_the_default(self):
        explicit = self._run("lockstep")
        implicit = self._run(None)
        assert explicit == implicit
        assert set(implicit.delivery_delays) == {1}
        assert implicit.delivery_delays[1] == implicit.messages

    def test_adversarial_slows_but_completes(self):
        baseline = self._run(None)
        hostile = self._run("adversarial:2")
        assert hostile.completed
        assert hostile.rounds > baseline.rounds
        assert set(hostile.delivery_delays) == {3}

    def test_jitter_histogram_spans_the_bound(self):
        result = self._run("jitter:2")
        assert result.completed
        assert set(result.delivery_delays) <= {1, 2, 3}
        assert sum(result.delivery_delays.values()) == result.messages

    def test_perlink_histogram_spans_the_spread(self):
        result = self._run("perlink:2")
        assert result.completed
        assert set(result.delivery_delays) <= {1, 2, 3}

    def test_partition_drops_are_reason_tagged(self):
        result = self._run("partition:2-5")
        assert result.completed
        assert result.dropped_by_reason.get("partition", 0) > 0
        assert result.dropped_messages == sum(result.dropped_by_reason.values())

    def test_partition_heals_after_window(self):
        """Discovery completes even when the partition window covers the
        rounds a lockstep run would have needed."""
        lockstep = self._run(None, algorithm="sublog")
        partition = self._run(
            f"partition:2-{lockstep.rounds + 2}",
            algorithm="sublog",
            resilient=True,
            stagnation_phases=4,
        )
        assert partition.completed
        assert partition.rounds > lockstep.rounds

    def test_trace_observer_records_delay_and_drop_reason(self):
        graph = make_topology("kout", 16, seed=3, k=3)
        observer = TraceObserver()
        result = repro.discover(
            graph, algorithm="namedropper", seed=5,
            delivery="partition:2-4", observers=[observer], max_rounds=2000,
        )
        assert result.completed
        delivered = result.messages - result.dropped_messages
        assert len(observer.events) == delivered
        assert len(observer.drops) == result.dropped_messages
        assert observer.drops_by_reason() == dict(result.dropped_by_reason)
        assert all(event.dropped is None for event in observer.events)
        assert all(event.delay == 1 for event in observer.events)

    def test_trace_observer_sees_jitter_delays(self):
        graph = make_topology("kout", 16, seed=3, k=3)
        observer = TraceObserver()
        result = repro.discover(
            graph, algorithm="namedropper", seed=5,
            delivery="jitter:2", observers=[observer], max_rounds=2000,
        )
        assert result.completed
        seen = {event.delay for event in observer.events}
        assert seen <= {1, 2, 3}
        assert len(seen) > 1  # jitter actually spread the deliveries

    def test_custom_model_subclass_plugs_in(self):
        class EvenOddLatency(DeliveryModel):
            name = "evenodd"

            def delay(self, sender, recipient, send_round):
                return 1 if recipient % 2 == 0 else 2

        result = self._run(EvenOddLatency())
        assert result.completed
        assert set(result.delivery_delays) <= {1, 2}
