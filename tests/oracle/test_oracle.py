"""Tests for the invariant oracle and the replayable schedule script."""

from __future__ import annotations

import json

from typing import Sequence

import pytest

from repro.graphs import make_topology
from repro.oracle import InvariantOracle, OracleViolation, ScheduleScript
from repro.oracle.fuzzer import run_script
from repro.oracle.script import SCRIPT_SCHEMA
from repro.sim import Message, ProtocolNode, SynchronousEngine


class TestScheduleScript:
    HOSTILE = ScheduleScript(
        algorithm="namedropper",
        topology="kout",
        n=14,
        seed=11,
        goal="strong_alive",
        delivery="jitter:2",
        loss_rate=0.1,
        fault_seed=3,
        crash_rounds={2: 4},
        join_rounds={5: 3},
        topology_params={"k": 2},
    )

    def test_json_round_trip(self):
        payload = json.loads(self.HOSTILE.to_json())
        assert payload["schema"] == SCRIPT_SCHEMA
        restored = ScheduleScript.from_dict(payload)
        assert restored == self.HOSTILE
        # Crash/join keys survive the str-keyed JSON encoding as ints.
        assert restored.crash_rounds == {2: 4}
        assert restored.join_rounds == {5: 3}

    def test_unknown_schema_rejected(self):
        payload = self.HOSTILE.to_dict()
        payload["schema"] = 999
        with pytest.raises(ValueError):
            ScheduleScript.from_dict(payload)

    def test_plain_script_has_no_schedule(self):
        plain = ScheduleScript(algorithm="flooding", topology="path", n=6, seed=0)
        assert not plain.has_schedule
        assert plain.fault_plan() is None
        assert plain.join_plan() is None
        assert self.HOSTILE.has_schedule

    def test_round_cap_falls_back_to_registry(self):
        plain = ScheduleScript(algorithm="flooding", topology="path", n=6, seed=0)
        assert plain.resolved_max_rounds() > 0
        capped = ScheduleScript(
            algorithm="flooding", topology="path", n=6, seed=0, max_rounds=9
        )
        assert capped.resolved_max_rounds() == 9

    def test_describe_names_the_schedule(self):
        text = self.HOSTILE.describe()
        assert "namedropper/kout" in text
        assert "delivery=jitter:2" in text
        assert "crashes=1" in text
        assert "joins=1" in text

    def test_identical_scripts_build_identical_engines(self):
        first = self.HOSTILE.build_engine()
        second = self.HOSTILE.build_engine()
        assert first.knowledge == second.knowledge

    def test_delivery_override(self):
        engine = self.HOSTILE.build_engine(delivery="lockstep")
        assert engine.delivery.uniform_delay == 1


class TestInvariantOracleCleanRuns:
    def test_clean_run_fast_path(self):
        script = ScheduleScript(
            algorithm="sublog", topology="kout", n=16, seed=5,
            topology_params={"k": 3},
        )
        result, oracle = run_script(script, fast_path=True)
        assert result.completed
        assert not oracle.violations
        assert oracle.rounds_checked == result.rounds
        assert result.extra["oracle"]["violations"] == []

    def test_clean_run_legacy_path(self):
        script = ScheduleScript(
            algorithm="swamping", topology="path", n=17, seed=5
        )
        result, oracle = run_script(script, fast_path=False)
        assert result.completed
        assert not oracle.violations

    def test_clean_hostile_run(self):
        script = TestScheduleScript.HOSTILE
        result, oracle = run_script(script)
        assert not oracle.violations
        assert oracle.rounds_checked == result.rounds

    def test_clean_weak_goal_run(self):
        script = ScheduleScript(
            algorithm="flooding", topology="star_in", n=12, seed=2, goal="weak"
        )
        result, oracle = run_script(script)
        assert result.completed
        assert not oracle.violations


class TestInvariantOracleDetection:
    def _engine_with_oracle(self, strict=True):
        script = ScheduleScript(algorithm="flooding", topology="path", n=6, seed=3)
        oracle = InvariantOracle(script=script, strict=strict)
        # Legacy path: ``engine.knowledge`` is the authoritative store, so
        # direct pokes simulate a corrupted simulator state.
        engine = script.build_engine(fast_path=False, observers=[oracle])
        return engine, oracle

    def test_monotonicity_violation_detected(self):
        # A silent protocol sends nothing, so a discarded id can never be
        # legitimately re-delivered before the next round-end check.
        class Silent(ProtocolNode):
            def on_round(self, round_no: int, inbox: Sequence[Message], rng) -> None:
                pass

        oracle = InvariantOracle(strict=True)
        engine = SynchronousEngine(
            make_topology("path", 6).adjacency(),
            Silent,
            observers=[oracle],
            fast_path=False,
        )
        engine.step()
        engine.knowledge[0].discard(1)
        with pytest.raises(OracleViolation) as excinfo:
            engine.step()
        assert excinfo.value.invariant == "monotonicity"
        assert excinfo.value.node == 0
        assert excinfo.value.script is None

    def test_derivability_violation_detected(self):
        engine, _ = self._engine_with_oracle()
        engine.step()
        engine.knowledge[0].add(4)  # teleported: no delivery carried it
        with pytest.raises(OracleViolation) as excinfo:
            engine.step()
        assert excinfo.value.invariant == "derivability"
        assert excinfo.value.node == 0

    def test_violation_carries_replay_script(self):
        engine, _ = self._engine_with_oracle()
        engine.step()
        engine.knowledge[0].add(4)
        with pytest.raises(OracleViolation) as excinfo:
            engine.step()
        violation = excinfo.value
        assert violation.script is not None
        assert "replay:" in str(violation)
        # The embedded JSON is itself a loadable script.
        payload = str(violation).split("replay: ", 1)[1]
        assert ScheduleScript.from_dict(json.loads(payload)) == violation.script

    def test_non_strict_mode_accumulates(self):
        engine, oracle = self._engine_with_oracle(strict=False)
        engine.step()
        engine.knowledge[0].add(4)
        engine.step()  # must not raise
        assert oracle.violations
        assert oracle.violations[0].invariant == "derivability"
        assert any(
            "derivability" in text
            for text in oracle.extra()["oracle"]["violations"]
        )
