"""Tests for the schedule fuzzer: generation, the budgeted loop, the
injected-bug self-test, and shrinking."""

from __future__ import annotations

import json

import pytest

from repro.algorithms import algorithm_names
from repro.oracle import OracleViolation, ScheduleScript
from repro.oracle.fuzzer import (
    DELIVERY_FAMILIES,
    FUZZ_ROUND_CAP,
    check_script,
    fuzz,
    generate_script,
    make_skip_delivery_hook,
    replay,
    run_script,
    shrink,
)


def family_of(script: ScheduleScript) -> str:
    return (script.delivery or "lockstep").partition(":")[0]


class TestGenerateScript:
    def test_deterministic_in_seed_and_index(self):
        assert generate_script(9, 4) == generate_script(9, 4)
        assert generate_script(9, 4) != generate_script(9, 5)
        assert generate_script(9, 4) != generate_script(10, 4)

    def test_coverage_cycling(self):
        # Consecutive indices walk the algorithms; each full cycle
        # advances the delivery family — so 3 * len(names) cases provably
        # cover every algorithm under three distinct families.
        names = algorithm_names()
        seen: dict = {}
        for index in range(3 * len(names)):
            script = generate_script(1, index)
            seen.setdefault(script.algorithm, set()).add(family_of(script))
        assert set(seen) == set(names)
        for families in seen.values():
            assert len(families) >= 3

    def test_newly_registered_algorithm_enters_the_cycle(self):
        # Regression: the coverage cycle must derive its algorithm list
        # from the registry at generation time, so an algorithm added via
        # register() is fuzzed without touching the fuzzer.  (A
        # hard-coded tuple here would silently starve new algorithms.)
        from repro.algorithms.registry import (
            AlgorithmSpec,
            get_algorithm,
            register,
            unregister,
        )

        spec = AlgorithmSpec(
            name="dummy_fuzz_target",
            description="throwaway algorithm for cycle-coverage regression",
            build=get_algorithm("flooding").build,
            round_cap=lambda n: 4 * n + 64,
        )
        register(spec)
        try:
            names = algorithm_names()
            assert "dummy_fuzz_target" in names
            covered = {
                generate_script(77, index).algorithm
                for index in range(len(names))
            }
            assert covered == set(names)
        finally:
            unregister("dummy_fuzz_target")

    def test_hostile_params_come_from_the_registry(self):
        # Scripts must pick up hostile hardening from the spec, not a
        # hard-coded algorithm tuple.
        from repro.oracle.fuzzer import generate_script as gen

        for index in range(120):
            script = gen(5, index)
            if script.algorithm not in ("sublog", "sublogcoin"):
                assert script.params == {}
            elif script.params:
                assert script.params.get("resilient") is True

    def test_scripts_are_well_formed(self):
        for index in range(20):
            script = generate_script(3, index)
            assert 4 <= script.n <= 24
            assert script.max_rounds <= FUZZ_ROUND_CAP
            assert family_of(script) in DELIVERY_FAMILIES
            if script.crash_rounds:
                assert script.goal == "strong_alive"
            # The script must be buildable and serializable.
            assert ScheduleScript.from_dict(
                json.loads(script.to_json())
            ) == script


class TestFuzzLoop:
    def test_acceptance_all_algorithms_three_models_clean(self):
        # The issue's acceptance bar: every registered algorithm under at
        # least three delivery models with zero violations.
        names = algorithm_names()
        report = fuzz(cases=3 * len(names), seed=2026, max_n=16)
        assert len(report.cases) == 3 * len(names)
        assert report.failures == ()
        seen: dict = {}
        for case in report.cases:
            seen.setdefault(case.script.algorithm, set()).add(
                family_of(case.script)
            )
        assert set(seen) == set(names)
        assert all(len(families) >= 3 for families in seen.values())

    def test_jsonl_report(self, tmp_path):
        path = tmp_path / "fuzz.jsonl"
        report = fuzz(cases=4, seed=5, max_n=10, report_path=str(path))
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records[0]["type"] == "manifest"
        assert records[0]["seed"] == 5
        cases = [record for record in records if record["type"] == "case"]
        assert len(cases) == len(report.cases) == 4
        assert all(case["status"] == "ok" for case in cases)
        # Every journaled script replays.
        for case in cases:
            assert ScheduleScript.from_dict(case["script"]).n >= 4
        assert records[-1]["type"] == "summary"
        assert records[-1]["cases_run"] == 4
        assert records[-1]["failures"] == 0

    def test_time_budget_stops_early(self):
        report = fuzz(cases=50, seed=1, time_budget=0.0)
        assert report.cases == ()

    def test_progress_callback_sees_every_case(self):
        seen = []
        fuzz(cases=3, seed=6, max_n=8, progress=seen.append)
        assert [case.index for case in seen] == [0, 1, 2]


class TestReplay:
    SCRIPT = ScheduleScript(
        algorithm="flooding", topology="cycle", n=8, seed=13, delivery="jitter:1"
    )

    def test_replay_accepts_script_json_and_dict(self):
        assert replay(self.SCRIPT).completed
        assert replay(self.SCRIPT.to_json()).completed
        assert replay(self.SCRIPT.to_dict()).completed


class TestInjectedBugSelfTest:
    """The satellite acceptance test: a deliberate transport bug (one
    silently skipped delivery) must be caught by the oracle and shrunk
    to a minimal reproduction."""

    FAILING = ScheduleScript(
        algorithm="flooding",
        topology="kout",
        n=12,
        seed=21,
        goal="strong_alive",
        delivery="jitter:2",
        loss_rate=0.15,
        crash_rounds={3: 5},
        join_rounds={7: 4},
        topology_params={"k": 2},
    )

    def test_oracle_catches_skipped_delivery(self):
        with pytest.raises(OracleViolation) as excinfo:
            run_script(self.FAILING, engine_hook=make_skip_delivery_hook())
        assert excinfo.value.invariant == "conservation"
        assert "replay:" in str(excinfo.value)

    def test_check_script_reports_invariant_kind(self):
        failure = check_script(
            self.FAILING,
            differential=False,
            reduction=False,
            engine_hook=make_skip_delivery_hook(),
        )
        assert failure is not None
        kind, detail = failure
        assert kind == "invariant"
        assert "conservation" in detail

    def test_shrinker_minimizes_the_schedule(self):
        def failing(candidate: ScheduleScript) -> bool:
            return (
                check_script(
                    candidate,
                    differential=False,
                    reduction=False,
                    engine_hook=make_skip_delivery_hook(),
                )
                is not None
            )

        assert failing(self.FAILING)
        minimal = shrink(self.FAILING, failing)
        assert failing(minimal)  # still reproduces
        # The bug needs only one delivered message: every adversarial
        # ingredient must have been stripped away.
        assert minimal.delivery is None
        assert minimal.loss_rate == 0.0
        assert minimal.crash_rounds == {}
        assert minimal.join_rounds == {}
        assert minimal.goal == "strong"
        assert minimal.topology == "path"
        assert minimal.n <= 4

    def test_check_script_reports_vector_divergence(self, monkeypatch):
        # A vector-only miscompare must surface under its own status so
        # triage can tell a backend bug from a transport bug.  Fake the
        # vector leg's report: sabotaging only the vector engine inside
        # check_script is not reachable from the outside.
        import repro.oracle.fuzzer as fuzzer_mod
        from repro.oracle.differential import DiffReport, Divergence

        clean = ScheduleScript(
            algorithm="flooding", topology="cycle", n=8, seed=13
        )
        assert check_script(clean, reduction=False) is None

        bad = DiffReport(
            label_a="vector", label_b="fast-path", equal=False, rounds=2,
            completed=False,
            divergence=Divergence(2, "knowledge", "a", "b"),
        )
        monkeypatch.setattr(fuzzer_mod, "vector_available", lambda: True)
        monkeypatch.setattr(
            fuzzer_mod, "diff_vector_vs_fast", lambda script: bad
        )
        failure = check_script(clean, reduction=False)
        assert failure is not None
        kind, detail = failure
        assert kind == "vector-divergence"
        assert "vector != fast-path" in detail

    def test_fuzz_loop_shrinks_failures(self):
        report = fuzz(
            cases=2,
            seed=3,
            max_n=10,
            differential=False,
            reduction=False,
            engine_hook=make_skip_delivery_hook(),
            max_shrink_attempts=40,
        )
        assert report.failures
        failure = report.failures[0]
        assert failure.status == "invariant"
        assert failure.shrunk is not None
        assert failure.shrunk.n <= failure.script.n
        assert failure.shrunk.delivery is None
