"""Cross-algorithm differential acceptance matrix.

Every registered algorithm — the PODC'99 classics, both sublog variants,
and the message-optimal/Chord baselines — must survive the full oracle
catalog with byte-identical fast-vs-legacy round digests under
{lockstep, jitter, adversarial} × {no-fault, crash-plan}.  This is the
machine-checked form of the claim that the protocol core, the oracle,
and both engine execution paths are genuinely algorithm-agnostic: adding
an algorithm to the registry automatically adds 6 cells here.

Closure is verified two ways: the oracle's end-of-run ``closure``
invariant recomputes the goal from ground truth on every cell (a
``completed`` flag that disagrees fails the cell), and the clean
lockstep cell additionally asserts the run actually completes — hostile
schedules and crash plans are allowed to stall (rpj is adversarially
slow by design; the deterministic baselines make no liveness promise
once their anchor crashes), but never to lie.
"""

from __future__ import annotations

import pytest

from repro.algorithms import algorithm_names
from repro.algorithms.registry import get_algorithm
from repro.analysis.invariants import closure_deficit
from repro.oracle import ScheduleScript
from repro.oracle.fuzzer import check_script, run_script

#: Delivery-model cells of the matrix (spec string or lockstep None).
DELIVERIES = (None, "jitter:2", "adversarial:2")

#: Fault cells: no faults, and a two-victim crash plan.
FAULT_PLANS = (
    {},
    {1: 3, 4: 5},
)

#: Bound every cell well below the slowest registered cap.
MATRIX_ROUND_CAP = 260


def _script(algorithm: str, delivery, crash_rounds) -> ScheduleScript:
    hostile = bool(delivery) or bool(crash_rounds)
    params = dict(get_algorithm(algorithm).hostile_params) if hostile else {}
    return ScheduleScript(
        algorithm=algorithm,
        topology="kout",
        n=12,
        seed=29,
        goal="strong_alive" if crash_rounds else "strong",
        delivery=delivery,
        crash_rounds=dict(crash_rounds),
        params=params,
        topology_params={"k": 3},
        max_rounds=MATRIX_ROUND_CAP,
    )


class TestAcceptanceMatrix:
    @pytest.mark.parametrize("crash_rounds", FAULT_PLANS, ids=("nofault", "crash"))
    @pytest.mark.parametrize(
        "delivery", DELIVERIES, ids=("lockstep", "jitter", "adversarial")
    )
    @pytest.mark.parametrize("algorithm", algorithm_names())
    def test_cell_is_clean(self, algorithm, delivery, crash_rounds):
        # check_script = strict oracle run (monotonicity, derivability,
        # conservation, silence, closure, ...) + per-round digest diff of
        # the fast path against the legacy path (+ the vector backend
        # when numpy is available).
        script = _script(algorithm, delivery, crash_rounds)
        failure = check_script(script, reduction=False)
        assert failure is None, f"{algorithm}/{delivery}/{crash_rounds}: {failure}"

    @pytest.mark.parametrize("algorithm", algorithm_names())
    def test_clean_lockstep_reaches_closure(self, algorithm):
        script = _script(algorithm, None, {})
        result, _oracle = run_script(script)
        assert result.completed, f"{algorithm} did not close under clean lockstep"
        # Independent of the engine's verdict: recompute strong closure
        # from the ground-truth knowledge map.
        engine = script.build_engine()
        engine.run(max_rounds=MATRIX_ROUND_CAP)
        assert not closure_deficit(engine.knowledge)
