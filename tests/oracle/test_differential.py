"""Tests for the differential runner and the lockstep reductions."""

from __future__ import annotations

import pytest

from repro.oracle import ScheduleScript
from repro.oracle.differential import (
    diff_engines,
    diff_fast_vs_legacy,
    diff_reduction,
    diff_vector_vs_fast,
    engine_digest,
    lockstep_reduction,
)
from repro.oracle.fuzzer import make_skip_delivery_hook
from repro.sim import vector_available

CLEAN = ScheduleScript(
    algorithm="sublog", topology="kout", n=16, seed=7, topology_params={"k": 3}
)
HOSTILE = ScheduleScript(
    algorithm="namedropper",
    topology="kout",
    n=14,
    seed=11,
    goal="strong_alive",
    delivery="jitter:2",
    loss_rate=0.1,
    crash_rounds={2: 4},
    join_rounds={5: 3},
    topology_params={"k": 2},
)


class TestFastVsLegacy:
    @pytest.mark.parametrize("script", (CLEAN, HOSTILE), ids=("clean", "hostile"))
    def test_paths_agree(self, script):
        report = diff_fast_vs_legacy(script)
        assert report.equal
        assert report.completed
        assert report.rounds > 0
        assert "fast-path == legacy" in report.describe()

    def test_divergence_is_localized(self):
        # Sabotage the fast-path engine only: the diff must pinpoint the
        # first divergent round instead of merely failing at the end.
        engine_a = CLEAN.build_engine(fast_path=True)
        engine_b = CLEAN.build_engine(fast_path=False)
        make_skip_delivery_hook()(engine_a)
        report = diff_engines(
            engine_a, engine_b, max_rounds=CLEAN.resolved_max_rounds()
        )
        assert not report.equal
        assert report.divergence is not None
        assert report.divergence.round_no == report.rounds
        assert "!=" in report.describe()

    def test_mismatched_inputs_reported_at_round_zero(self):
        other = ScheduleScript(
            algorithm="sublog", topology="kout", n=16, seed=8,
            topology_params={"k": 3},
        )
        report = diff_engines(
            CLEAN.build_engine(), other.build_engine(), max_rounds=5
        )
        assert not report.equal
        assert report.divergence.round_no == 0


@pytest.mark.skipif(not vector_available(), reason="numpy unavailable")
class TestVectorVsFast:
    @pytest.mark.parametrize("script", (CLEAN, HOSTILE), ids=("clean", "hostile"))
    def test_backends_agree(self, script):
        report = diff_vector_vs_fast(script)
        assert report.equal
        assert report.completed
        assert "vector == fast-path" in report.describe()

    def test_divergence_is_localized(self):
        engine_a = CLEAN.build_engine(backend="vector")
        engine_b = CLEAN.build_engine(backend="fast")
        make_skip_delivery_hook()(engine_a)
        report = diff_engines(
            engine_a, engine_b, max_rounds=CLEAN.resolved_max_rounds(),
            label_a="vector", label_b="fast-path",
        )
        assert not report.equal
        assert report.divergence is not None

    def test_enforcement_toggle_passthrough(self):
        report = diff_vector_vs_fast(CLEAN, enforce_legality=False)
        assert report.equal


class TestLockstepReduction:
    def test_reduction_specs(self):
        assert lockstep_reduction(None, 20) is None
        assert lockstep_reduction("lockstep", 20) is None
        assert lockstep_reduction("jitter:3", 20) == "jitter:0"
        assert lockstep_reduction("adversarial:2", 20) == "adversarial:0"
        assert lockstep_reduction("perlink:2", 20) == "perlink:0"
        # The window must land strictly beyond the last delivery round.
        assert lockstep_reduction("partition:4-8", 20) == "partition:22-22"

    @pytest.mark.parametrize(
        "delivery", ("jitter:2", "adversarial:2", "perlink:2", "partition:3-5")
    )
    def test_degenerate_models_match_lockstep(self, delivery):
        script = ScheduleScript(
            algorithm="swamping",
            topology="kout",
            n=12,
            seed=4,
            delivery=delivery,
            topology_params={"k": 2},
        )
        report = diff_reduction(script)
        assert report is not None
        assert report.equal, report.describe()
        assert report.label_b == "lockstep"

    def test_reduction_respects_fault_schedule(self):
        report = diff_reduction(HOSTILE)
        assert report is not None
        assert report.equal, report.describe()

    def test_lockstep_script_has_nothing_to_reduce(self):
        assert diff_reduction(CLEAN) is None


class TestEngineDigest:
    def test_digest_captures_full_ledger(self):
        engine = CLEAN.build_engine()
        for _ in range(3):
            engine.step()
        digest = engine_digest(engine)
        assert digest.round_no == 3
        assert digest.messages > 0
        assert digest.in_flight == engine.delivery.in_flight()
        assert len(digest.knowledge) == 64  # sha256 hex

    def test_equal_engines_digest_equal(self):
        engine_a = CLEAN.build_engine(fast_path=True)
        engine_b = CLEAN.build_engine(fast_path=False)
        for _ in range(3):
            assert engine_digest(engine_a) == engine_digest(engine_b)
            engine_a.step()
            engine_b.step()
